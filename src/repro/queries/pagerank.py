"""Pagerank query (paper section 6.3, query PR).

Per-world pagerank by power iteration on the world's CSR adjacency.
Dangling vertices (degree 0 in the world) redistribute their mass
uniformly, the standard convention.  The uncertain-graph pagerank of a
vertex is the expectation of its per-world score.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


def world_pagerank(
    world: World,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> np.ndarray:
    """Pagerank vector of one deterministic world."""
    n = world.n
    if n == 0:
        return np.zeros(0)
    degrees = world.degrees().astype(np.float64)
    dangling = degrees == 0
    safe_degrees = np.where(dangling, 1.0, degrees)
    pr = np.full(n, 1.0 / n)
    indptr, indices = world.indptr, world.indices
    # Directed-edge source ids for the bincount push (symmetric graph).
    sources = np.repeat(np.arange(n), np.diff(indptr))
    for _ in range(max_iterations):
        shares = pr / safe_degrees
        pushed = np.bincount(indices, weights=shares[sources], minlength=n)
        dangling_mass = pr[dangling].sum()
        new_pr = (1.0 - damping) / n + damping * (pushed + dangling_mass / n)
        if np.abs(new_pr - pr).sum() < tol:
            pr = new_pr
            break
        pr = new_pr
    return pr


def batch_pagerank(
    batch: "WorldBatch",
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> np.ndarray:
    """``(N, n)`` pagerank matrix: power iteration over the whole ensemble.

    Bit-identical to running :func:`world_pagerank` per world: each
    iteration pushes every world's mass through one flat ``bincount``
    whose weights list exactly the alive directed edges in the per-world
    CSR order (dead edges never enter the pair lists), and each world
    freezes exactly when its own L1 delta drops below ``tol``.  The
    working block compacts once more than half its worlds have frozen,
    bounding wasted work on converged worlds.
    """
    N, n = batch.n_worlds, batch.n
    if n == 0:
        return np.zeros((N, 0))
    degrees = batch.degrees().astype(np.float64)
    dangling = degrees == 0
    has_dangling = dangling.any(axis=1)
    safe_degrees = np.where(dangling, 1.0, degrees)
    pr = np.full((N, n), 1.0 / n)
    alive = batch.alive_directed()
    dir_source = batch.topology.dir_source
    dir_target = batch.topology.indices

    def build_pairs(world_ids: np.ndarray):
        """Flat (world, alive-edge) gather/scatter indices for a block."""
        w_local, e_idx = np.nonzero(alive[world_ids])
        return (
            w_local * n + dir_source[e_idx],  # gather index into shares
            w_local * n + dir_target[e_idx],  # scatter index into pushed
        )

    block = np.arange(N)          # global world ids of the working block
    running = np.ones(N, dtype=bool)  # per-block-row: not yet converged
    gather_idx, scatter_idx = build_pairs(block)
    for _ in range(max_iterations):
        k = block.size
        shares = pr[block] / safe_degrees[block]
        pushed = np.bincount(
            scatter_idx, weights=shares.ravel()[gather_idx], minlength=k * n
        ).reshape(k, n)
        live = np.flatnonzero(running)
        # Per-world fancy-index sum, matching the summation order (and
        # pairwise grouping) of the legacy ``pr[dangling].sum()``; rows
        # without dangling vertices keep the exact 0.0 an empty
        # selection would sum to.
        dangling_mass = np.zeros(k)
        for row in live:
            world = block[row]
            if has_dangling[world]:
                dangling_mass[row] = pr[world][dangling[world]].sum()
        new_pr = (1.0 - damping) / n + damping * (
            pushed + dangling_mass[:, None] / n
        )
        deltas = np.abs(new_pr - pr[block]).sum(axis=1)
        updated = block[live]
        pr[updated] = new_pr[live]
        running[live] = deltas[live] >= tol
        still = int(running.sum())
        if still == 0:
            break
        if still * 2 <= k:
            block = block[running]
            running = np.ones(block.size, dtype=bool)
            gather_idx, scatter_idx = build_pairs(block)
    return pr


class PageRankQuery:
    """Per-vertex pagerank outcomes across possible worlds."""

    name = "PR"

    def __init__(self, n: int, damping: float = 0.85, max_iterations: int = 60) -> None:
        self.n = n
        self.damping = damping
        self.max_iterations = max_iterations

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        return world_pagerank(
            world, damping=self.damping, max_iterations=self.max_iterations
        )

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """Power-iterate every world at once; see :func:`batch_pagerank`."""
        return batch_pagerank(
            batch, damping=self.damping, max_iterations=self.max_iterations
        )
