"""Shortest-path distance query (paper section 6.3, query SP).

The uncertain shortest-path distance of a pair is the average of its
distance over worlds *that connect the pair* (the paper excludes
disconnecting worlds).  Per world, the outcome vector holds the
distance of each requested pair, with ``nan`` where the pair is
disconnected; estimators average with nan-exclusion.

Two distance notions are supported:

- hop distance (default) — per-world BFS;
- ``weighted=True`` — most-probable-path distance under the paper's
  ``-log p`` spanner transform (after Potamias et al. [32]): per-world
  binary-heap Dijkstra, or the batched delta-stepping kernel for
  ensembles.

Pairs sharing a source are batched into a single traversal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.sampling.worlds import World
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch


def sample_vertex_pairs(
    graph: UncertainGraph,
    count: int,
    rng: "int | np.random.Generator | None" = None,
) -> list[tuple[int, int]]:
    """Sample ``count`` distinct random vertex pairs (dense ids).

    Mirrors the paper's protocol of evaluating SP / RL on 1000 random
    pairs rather than all ``n^2``.
    """
    rng = ensure_rng(rng)
    n = graph.number_of_vertices()
    if n < 2:
        raise ValueError("need at least two vertices to form pairs")
    seen: set[tuple[int, int]] = set()
    pairs: list[tuple[int, int]] = []
    max_pairs = n * (n - 1) // 2
    count = min(count, max_pairs)
    while len(pairs) < count:
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key in seen:
            continue
        seen.add(key)
        pairs.append(key)
    return pairs


class ShortestPathQuery:
    """Per-pair distances with nan for disconnected pairs.

    ``weighted=True`` switches from hop BFS to most-probable-path
    distances on the ``-log p`` weight transform the worlds carry (the
    outcome is ``-log`` of the pair's most probable path probability);
    the nan-exclusion protocol is identical.
    """

    def __init__(self, pairs: list[tuple[int, int]], weighted: bool = False) -> None:
        if not pairs:
            raise ValueError("at least one vertex pair is required")
        self.pairs = list(pairs)
        self.weighted = bool(weighted)
        self.name = "WSP" if self.weighted else "SP"
        # Group pairs by source so each world runs one traversal per
        # distinct source.
        self._by_source: dict[int, list[tuple[int, int]]] = {}
        for idx, (s, t) in enumerate(self.pairs):
            self._by_source.setdefault(s, []).append((idx, t))

    def unit_count(self) -> int:
        return len(self.pairs)

    def evaluate(self, world: World) -> np.ndarray:
        out = np.full(len(self.pairs), np.nan)
        for source, targets in self._by_source.items():
            if self.weighted:
                dist = world.weighted_distances(source)
                for idx, t in targets:
                    d = dist[t]
                    if np.isfinite(d):
                        out[idx] = float(d)
            else:
                dist = world.bfs_distances(source)
                for idx, t in targets:
                    d = dist[t]
                    if d >= 0:
                        out[idx] = float(d)
        return out

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """One batched traversal per distinct source covers every world.

        Each traversal (BFS or delta-stepping) retires a world as soon
        as that source's targets are resolved (or provably
        unreachable), so worlds rarely pay for a full pass.
        """
        out = np.full((batch.n_worlds, len(self.pairs)), np.nan)
        for source, targets in self._by_source.items():
            wanted = [t for _, t in targets]
            if self.weighted:
                dist = batch.weighted_distances(source, targets=wanted)
                for idx, t in targets:
                    d = dist[:, t]
                    connected = np.isfinite(d)
                    out[connected, idx] = d[connected]
            else:
                dist = batch.bfs_distances(source, targets=wanted)
                for idx, t in targets:
                    d = dist[:, t]
                    connected = d >= 0
                    out[connected, idx] = d[connected]
        return out
