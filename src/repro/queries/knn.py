"""k-nearest-neighbour queries in uncertain graphs (Potamias et al. [32]).

The paper borrows its spanner weight transform (``-log p``) from the
k-NN-in-uncertain-graphs line of work, which defines distances under
possible-world semantics.  Two standard notions are provided:

- **majority distance** ``d_maj(u, v)``: the most probable shortest-path
  distance over worlds (mode of the distance distribution, infinity
  counted as a value), and
- **median distance** ``d_med(u, v)``: the smallest ``d`` whose
  cumulative world-probability reaches 1/2.

Both are robust to the disconnection mass that breaks the naive
"expected distance".  :class:`KNNQuery` returns the per-world distance
vector from one source to all vertices; the estimator-side helpers
aggregate a matrix of such outcomes into majority/median distances and
a k-NN set — so the same MC machinery (and the same sparsified graphs)
answer k-NN queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import WorldBatch

#: Sentinel used in outcome matrices for "disconnected in this world".
UNREACHABLE = np.inf


class SourceDistanceQuery:
    """Per-world distances from a fixed source to every vertex.

    Disconnected vertices score ``inf`` (a real outcome value for the
    majority/median aggregations, unlike SP's nan-exclusion protocol).
    ``weighted=True`` reports most-probable-path distances on the
    ``-log p`` transform — the k-NN semantics of [32] — instead of hop
    counts.
    """

    def __init__(self, source: int, n: int, weighted: bool = False) -> None:
        self.source = source
        self.n = n
        self.weighted = bool(weighted)
        self.name = "WKNN" if self.weighted else "KNN"

    def unit_count(self) -> int:
        return self.n

    def evaluate(self, world: World) -> np.ndarray:
        if self.weighted:
            return world.weighted_distances(self.source)
        dist = world.bfs_distances(self.source).astype(np.float64)
        dist[dist < 0] = UNREACHABLE
        return dist

    def evaluate_batch(self, batch: "WorldBatch") -> np.ndarray:
        """Source-to-all distances of every world from one batched pass."""
        if self.weighted:
            return batch.weighted_distances(self.source)
        dist = batch.bfs_distances(self.source).astype(np.float64)
        dist[dist < 0] = UNREACHABLE
        return dist


def majority_distances(outcomes: np.ndarray) -> np.ndarray:
    """Mode of each vertex's distance distribution (ties -> smallest).

    Sort-based mode over the whole ``(samples, n)`` matrix: sort each
    column, find run boundaries on the column-major flattening, and pick
    each column's first longest run — runs are in ascending value order,
    so ties break towards the smallest value exactly like the old
    per-column ``np.unique`` loop.
    """
    samples, n = outcomes.shape
    if samples == 0:
        raise ValueError("majority_distances needs at least one sample")
    if n == 0:
        return np.empty(0, dtype=np.float64)
    flat = np.sort(outcomes, axis=0).T.ravel()
    is_start = np.empty(flat.shape, dtype=bool)
    is_start[0] = True
    # nans sort to the end of each column and must pool into one run,
    # matching np.unique's equal-nan behaviour.
    is_start[1:] = (flat[1:] != flat[:-1]) & ~(
        np.isnan(flat[1:]) & np.isnan(flat[:-1])
    )
    is_start[::samples] = True  # a new column always opens a new run
    run_idx = np.flatnonzero(is_start)
    counts = np.diff(np.append(run_idx, flat.size))
    run_col = run_idx // samples
    col_starts = np.searchsorted(run_col, np.arange(n))
    best = counts == np.maximum.reduceat(counts, col_starts)[run_col]
    best_runs = np.flatnonzero(best)
    first_best = best_runs[np.searchsorted(run_col[best_runs], np.arange(n))]
    return flat[run_idx[first_best]]


def median_distances(outcomes: np.ndarray) -> np.ndarray:
    """Median of each vertex's distance distribution (inf-aware)."""
    return np.median(outcomes, axis=0)


def k_nearest_neighbors(
    outcomes: np.ndarray,
    source: int,
    k: int,
    aggregate: str = "median",
) -> list[int]:
    """The ``k`` vertices closest to ``source`` under an aggregate distance.

    Parameters
    ----------
    outcomes:
        ``(samples, n)`` matrix from :class:`SourceDistanceQuery`.
    source:
        Source vertex id (excluded from its own neighbour list).
    k:
        Number of neighbours to return.
    aggregate:
        ``"median"`` (default) or ``"majority"``.

    Ties are broken by vertex id for determinism.  Vertices whose
    aggregate distance is infinite are never returned, so fewer than
    ``k`` ids may come back on fragmented graphs.
    """
    if aggregate == "median":
        distances = median_distances(outcomes)
    elif aggregate == "majority":
        distances = majority_distances(outcomes)
    else:
        raise ValueError(f"aggregate must be 'median' or 'majority', got {aggregate!r}")
    order = sorted(
        (float(d), v) for v, d in enumerate(distances)
        if v != source and np.isfinite(d)
    )
    return [v for _, v in order[:k]]
