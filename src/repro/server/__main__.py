"""``repro-serve`` — run the sparsification job server.

Examples
--------
Serve the current directory's datasets on the default port::

    repro-serve --port 8765

Ephemeral port (the chosen port is printed on the first line, which is
what the CI smoke driver parses), 4 job workers, 2-process estimators::

    repro-serve --port 0 --workers 4 --mc-workers 2

Also reachable as ``python -m repro.server`` and as the ``serve``
subcommand of ``repro-sparsify``.
"""

from __future__ import annotations

import argparse

from repro.server.api import start_server
from repro.server.service import ServerConfig


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the server options (shared with ``repro-sparsify serve``)."""
    defaults = ServerConfig()
    parser.add_argument("--host", default=defaults.host,
                        help=f"bind address (default {defaults.host})")
    parser.add_argument("--port", type=int, default=defaults.port,
                        help=f"bind port; 0 picks an ephemeral port "
                        f"(default {defaults.port})")
    parser.add_argument("--queue-depth", type=int,
                        default=defaults.queue_depth,
                        help="admission-control bound on pending jobs; "
                        "submissions beyond it get 429 "
                        f"(default {defaults.queue_depth})")
    parser.add_argument("--cache-size", type=int,
                        default=defaults.cache_capacity,
                        help="artifact LRU capacity "
                        f"(default {defaults.cache_capacity})")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="job worker threads "
                        f"(default {defaults.workers})")
    parser.add_argument("--mc-workers", type=int, default=defaults.mc_workers,
                        help="process-pool width inside estimate jobs; "
                        "results are identical for any value "
                        f"(default {defaults.mc_workers})")
    parser.add_argument("--datasets-root", default=None,
                        help="confine dataset paths to this directory "
                        "(default: any readable path)")
    parser.add_argument("--cache-spill-dir", default=None,
                        help="directory for the artifact disk-spill tier; "
                        "evicted artifacts are kept there and digest-"
                        "verified on reload (default: disabled)")
    parser.add_argument("--cache-spill-mb", type=int,
                        default=defaults.cache_spill_mb,
                        help="byte budget of the spill tier in MiB "
                        f"(default {defaults.cache_spill_mb})")
    parser.add_argument("--request-timeout", type=float,
                        default=defaults.request_timeout,
                        help="seconds a request waits on its job "
                        f"(default {defaults.request_timeout:g})")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_size,
        workers=args.workers,
        mc_workers=args.mc_workers,
        datasets_root=args.datasets_root,
        request_timeout=args.request_timeout,
        cache_spill_dir=args.cache_spill_dir,
        cache_spill_mb=args.cache_spill_mb,
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Start the server and block until interrupted."""
    server = start_server(config_from_args(args))
    server.verbose = args.verbose
    host, port = server.server_address[0], server.port
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    try:
        # serve_forever runs on a daemon thread; park the main thread so
        # Ctrl-C lands here and shutdown routes through close().
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.close()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Sparsification-as-a-service job server "
        "(Parchas et al. reproduction)",
    )
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
