"""Sparsification-as-a-service: a long-lived job server over the library.

Everything below this package is a pure function; this layer is the
production shape around them (ROADMAP item 1):

- :mod:`repro.server.queue` — bounded priority job queue with
  admission control (429 beyond ``queue_depth``),
- :mod:`repro.server.cache` — bounded LRU artifact cache with
  single-flight deduplication; keyed by the dataset *content digest*
  plus the full parameter tuple, so hits are byte-identical to
  recomputation (the seeded bit-identity contracts of PRs 1–6 make
  this sound),
- :mod:`repro.server.scheduler` — deterministic cron-style scheduler
  for recurring re-sparsification refreshes,
- :mod:`repro.server.meter` — queries/sec, worlds/sec, cache hit rate
  and per-endpoint latency percentiles (the ``metrics`` endpoint),
- :mod:`repro.server.service` — the worker core tying those together
  over :func:`repro.core.sparsify`, the Monte-Carlo estimators, and
  :func:`repro.core.gdb_grid` (with per-dataset
  :class:`~repro.core.backbone.BackbonePlan` reuse),
- :mod:`repro.server.api` — the stdlib HTTP/JSON front-end
  (``repro-serve`` / ``python -m repro.server``).
"""

from repro.server.api import ReproHTTPServer, start_server
from repro.server.cache import ArtifactCache
from repro.server.meter import ThroughputMeter
from repro.server.queue import Job, PriorityJobQueue
from repro.server.scheduler import ScheduledTask, Scheduler
from repro.server.service import ServerConfig, SparsifierService, canonical_body

__all__ = [
    "ArtifactCache",
    "Job",
    "PriorityJobQueue",
    "ReproHTTPServer",
    "ScheduledTask",
    "Scheduler",
    "ServerConfig",
    "SparsifierService",
    "ThroughputMeter",
    "canonical_body",
    "start_server",
]
