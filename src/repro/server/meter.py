"""Throughput and latency accounting for the job server.

Mirrors the shape of a download-rate meter (bytes/sec over a sliding
window) with the units that matter here: *queries/sec* (requests
served), *worlds/sec* (Monte-Carlo worlds evaluated by estimate jobs),
and per-endpoint latency percentiles from a bounded reservoir of recent
observations.  The clock is injectable so tests (and the deterministic
scheduler) can drive it without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class ThroughputMeter:
    """Sliding-window rates + per-endpoint latency percentiles.

    Parameters
    ----------
    window:
        Sliding-window length in seconds for the rate figures.
    reservoir:
        Per-endpoint cap on retained latency observations (the
        percentile basis; oldest observations fall out first).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        window: float = 60.0,
        reservoir: int = 2048,
        clock=time.monotonic,
    ) -> None:
        self.window = float(window)
        self.reservoir = int(reservoir)
        self.clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        # endpoint -> (count, total_seconds, recent deque[(t, seconds, worlds)],
        #              latency reservoir deque[seconds])
        self._endpoints: dict[str, dict] = {}
        self.total_requests = 0
        self.total_worlds = 0

    def _entry(self, endpoint: str) -> dict:
        entry = self._endpoints.get(endpoint)
        if entry is None:
            entry = {
                "count": 0,
                "seconds": 0.0,
                "recent": deque(),
                "latencies": deque(maxlen=self.reservoir),
            }
            self._endpoints[endpoint] = entry
        return entry

    def record(self, endpoint: str, seconds: float, worlds: int = 0) -> None:
        """Account one served request: its latency and any worlds evaluated."""
        now = self.clock()
        with self._lock:
            entry = self._entry(endpoint)
            entry["count"] += 1
            entry["seconds"] += seconds
            entry["recent"].append((now, float(seconds), int(worlds)))
            entry["latencies"].append(float(seconds))
            self.total_requests += 1
            self.total_worlds += int(worlds)
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        for entry in self._endpoints.values():
            recent = entry["recent"]
            while recent and recent[0][0] < horizon:
                recent.popleft()

    def queries_per_second(self, endpoint: "str | None" = None) -> float:
        """Requests/sec over the sliding window (all endpoints by default)."""
        now = self.clock()
        with self._lock:
            self._prune(now)
            entries = (
                [self._endpoints[endpoint]] if endpoint in self._endpoints
                else [] if endpoint is not None
                else list(self._endpoints.values())
            )
            count = sum(len(e["recent"]) for e in entries)
            span = min(self.window, max(now - self._started, 1e-9))
            return count / span

    def worlds_per_second(self) -> float:
        """Monte-Carlo worlds/sec over the sliding window."""
        now = self.clock()
        with self._lock:
            self._prune(now)
            worlds = sum(
                w for e in self._endpoints.values() for (_, _, w) in e["recent"]
            )
            span = min(self.window, max(now - self._started, 1e-9))
            return worlds / span

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile on an already-sorted sample."""
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def latency_percentiles(
        self, endpoint: str, quantiles: tuple = (50, 90, 99)
    ) -> dict:
        with self._lock:
            entry = self._endpoints.get(endpoint)
            ordered = sorted(entry["latencies"]) if entry else []
        return {f"p{q:g}": self._percentile(ordered, q) for q in quantiles}

    def snapshot(self) -> dict:
        """JSON-ready metrics document (the ``metrics`` endpoint body)."""
        now = self.clock()
        with self._lock:
            self._prune(now)
            span = min(self.window, max(now - self._started, 1e-9))
            endpoints = {}
            for name, entry in sorted(self._endpoints.items()):
                ordered = sorted(entry["latencies"])
                count = entry["count"]
                endpoints[name] = {
                    "requests": count,
                    "requests_per_second": len(entry["recent"]) / span,
                    "mean_latency_s": entry["seconds"] / count if count else 0.0,
                    "latency_s": {
                        f"p{q:g}": self._percentile(ordered, q)
                        for q in (50, 90, 99)
                    },
                }
            recent_worlds = sum(
                w for e in self._endpoints.values() for (_, _, w) in e["recent"]
            )
            recent_queries = sum(
                len(e["recent"]) for e in self._endpoints.values()
            )
            return {
                "uptime_s": now - self._started,
                "window_s": self.window,
                "total_requests": self.total_requests,
                "total_worlds": self.total_worlds,
                "queries_per_second": recent_queries / span,
                "worlds_per_second": recent_worlds / span,
                "endpoints": endpoints,
            }
