"""Bounded priority job queue with admission control.

The server's unit of work is a :class:`Job`: a ``(kind, params)`` pair
plus an integer priority (lower runs first; ties run in submission
order, so the schedule is a pure function of the submission sequence —
the deterministic-partitioning discipline applied to queueing).  The
queue is *bounded*: once ``max_depth`` jobs are pending, submissions
raise :class:`~repro.exceptions.AdmissionError`, which the HTTP layer
turns into ``429 Too Many Requests``.  Shedding load at admission keeps
the latency of accepted jobs bounded instead of letting a backlog grow
without limit.

Workers call :meth:`PriorityJobQueue.claim` (blocking) and complete
jobs with :meth:`PriorityJobQueue.finish`; callers block on
:meth:`Job.wait`, which re-raises the job's error in the waiting
thread.  :meth:`PriorityJobQueue.close` wakes every claimer with
``None`` and fails all still-pending jobs, so shutdown never strands a
waiter.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import AdmissionError, ServerError

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass(eq=False)
class Job:
    """One queued unit of work and its completion rendezvous."""

    kind: str
    params: dict
    priority: int = 50
    seq: int = 0
    state: str = QUEUED
    result: Any = None
    error: "BaseException | None" = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: "float | None" = None) -> Any:
        """Block until the job completes; return its result.

        Re-raises the job's error in the waiting thread, and raises
        :class:`ServerError` on timeout.
        """
        if not self._done.wait(timeout):
            raise ServerError(
                f"timed out after {timeout:g}s waiting for {self.kind} job"
            )
        if self.error is not None:
            raise self.error
        return self.result

    @property
    def finished(self) -> bool:
        return self._done.is_set()


class PriorityJobQueue:
    """Thread-safe bounded priority queue of :class:`Job` objects.

    Parameters
    ----------
    max_depth:
        Admission-control bound on *pending* (not yet claimed) jobs.
        Submissions beyond it raise :class:`AdmissionError`.
    """

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ServerError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, Job]] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.running = 0

    # -- producer side -------------------------------------------------------
    def submit(self, kind: str, params: dict, priority: int = 50) -> Job:
        """Enqueue a job, or raise :class:`AdmissionError` when full."""
        with self._lock:
            if self._closed:
                raise ServerError("job queue is closed")
            if len(self._heap) >= self.max_depth:
                self.rejected += 1
                raise AdmissionError(
                    f"job queue full ({self.max_depth} pending); retry later"
                )
            job = Job(kind=kind, params=params, priority=int(priority),
                      seq=next(self._seq))
            heapq.heappush(self._heap, (job.priority, job.seq, job))
            self.submitted += 1
            self._not_empty.notify()
            return job

    # -- worker side ---------------------------------------------------------
    def claim(self, timeout: "float | None" = None) -> "Job | None":
        """Pop the most urgent pending job, blocking up to ``timeout``.

        Returns ``None`` when the queue is closed or the wait times out.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    # Wait on the *remaining* time so a wakeup that loses
                    # the job to another claimer (or a spurious one) can't
                    # extend the total block beyond the requested timeout.
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        return None
            _, _, job = heapq.heappop(self._heap)
            job.state = RUNNING
            self.running += 1
            return job

    def finish(self, job: Job, result: Any = None,
               error: "BaseException | None" = None) -> None:
        """Complete a claimed job and wake its waiters."""
        with self._lock:
            self.running -= 1
            if error is not None:
                job.state = FAILED
                job.error = error
                self.failed += 1
            else:
                job.state = DONE
                job.result = result
                self.completed += 1
        job._done.set()

    def run_job(self, job: Job, execute: Callable[[Job], Any]) -> None:
        """Execute a claimed job through ``execute`` and record the outcome."""
        try:
            result = execute(job)
        except BaseException as error:  # noqa: BLE001 - relayed to the waiter
            self.finish(job, error=error)
        else:
            self.finish(job, result=result)

    # -- introspection / lifecycle -------------------------------------------
    @property
    def depth(self) -> int:
        """Number of pending (unclaimed) jobs."""
        with self._lock:
            return len(self._heap)

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": len(self._heap),
                "running": self.running,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "max_depth": self.max_depth,
            }

    def close(self) -> None:
        """Refuse new work, fail pending jobs, wake every claimer."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            pending = [job for _, _, job in self._heap]
            self._heap.clear()
            self._not_empty.notify_all()
        for job in pending:
            job.state = FAILED
            job.error = ServerError("job queue closed before execution")
            job._done.set()
