"""Bounded LRU artifact cache with single-flight deduplication.

Artifacts are the exact response bodies the server sends (bytes), keyed
by the full parameter tuple that determines them —
``(dataset digest, endpoint, alpha, h, seed, engine, solver, emd_mode,
…)``.  Because every compute layer underneath is deterministic under a
fixed seed (the bit-identity contracts of PRs 1–6) and dataset
round-trips are lossless, a cache hit is *guaranteed* byte-identical to
recomputation — so a hot ``(alpha, h)`` cell is computed once and
served millions of times.

Single flight: when N requests for the same key arrive concurrently,
exactly one (the *leader*) computes; the rest (the *followers*) block
on the leader's event and receive the same object.  A leader's failure
propagates to its followers but is never cached, so a transient error
doesn't poison the key.

Disk spill: with ``spill_dir`` set, *bytes* artifacts evicted from the
in-memory LRU are written to a size-bounded on-disk tier (the shape of
sabnzbd's article cache) instead of being dropped.  A later lookup that
misses memory reloads from disk, verifies the artifact's SHA-256
against the digest recorded at spill time (a corrupted or truncated
file is discarded, never served), and promotes the value back into
memory.  The spill tier is itself LRU-bounded by total bytes.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.exceptions import ServerError


class _Flight:
    """In-flight computation shared by a leader and its followers."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: "BaseException | None" = None


def _spill_name(key: Hashable) -> str:
    """Stable on-disk filename for a cache key."""
    material = key if isinstance(key, bytes) else repr(key).encode("utf-8")
    return hashlib.sha256(material).hexdigest() + ".art"


class ArtifactCache:
    """Thread-safe bounded LRU map with single-flight ``get_or_compute``.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries.
    spill_dir:
        Optional directory for the disk-spill tier; ``None`` (default)
        disables spilling and evictions are simply dropped.
    spill_capacity_bytes:
        Total byte budget of the spill tier; the least recently spilled
        artifacts are deleted beyond it.
    """

    def __init__(
        self,
        capacity: int = 128,
        spill_dir: "str | None" = None,
        spill_capacity_bytes: int = 256 << 20,
    ) -> None:
        if capacity < 1:
            raise ServerError(f"capacity must be positive, got {capacity}")
        if spill_capacity_bytes < 0:
            raise ServerError(
                f"spill capacity must be non-negative, got {spill_capacity_bytes}"
            )
        self.capacity = capacity
        self.spill_dir = spill_dir
        self.spill_capacity_bytes = spill_capacity_bytes
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: key -> (filename, sha256 hex of the artifact bytes, size)
        self._spilled: "OrderedDict[Hashable, tuple[str, str, int]]" = OrderedDict()
        self._spill_bytes = 0
        self._inflight: dict[Hashable, _Flight] = {}
        #: tag -> keys carrying it, and the reverse map.  Tags group the
        #: artifacts derived from one dataset digest so a delta push can
        #: evict exactly the stale ones (:meth:`invalidate`).
        self._tags: dict[Hashable, set] = {}
        self._tag_of: dict[Hashable, Hashable] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.joined = 0  # followers served by another request's flight
        self.spills = 0        # artifacts written to the disk tier
        self.spill_hits = 0    # lookups served by reloading from disk
        self.spill_evictions = 0  # spilled artifacts dropped for space
        self.spill_corrupt = 0    # reloads rejected by digest verification
        self.invalidations = 0    # artifacts dropped by tag invalidation
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries or key in self._spilled

    # -- tag index (all methods called with the lock held) ------------------
    def _tag_locked(self, key: Hashable, tag: Hashable) -> None:
        if tag is None:
            return
        old = self._tag_of.get(key)
        if old == tag:
            return
        if old is not None:
            members = self._tags.get(old)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._tags[old]
        self._tag_of[key] = tag
        self._tags.setdefault(tag, set()).add(key)

    def _untag_locked(self, key: Hashable) -> None:
        tag = self._tag_of.pop(key, None)
        if tag is not None:
            members = self._tags.get(tag)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._tags[tag]

    # -- spill tier (all methods called with the lock held) -----------------
    def _evict_overflow_locked(self) -> None:
        while len(self._entries) > self.capacity:
            key, value = self._entries.popitem(last=False)
            self.evictions += 1
            if not self._spill_put_locked(key, value):
                self._untag_locked(key)  # gone from both tiers

    def _spill_put_locked(self, key: Hashable, value: Any) -> bool:
        if self.spill_dir is None or not isinstance(value, bytes):
            return False  # only byte artifacts have a canonical disk form
        name = _spill_name(key)
        try:
            with open(os.path.join(self.spill_dir, name), "wb") as fh:
                fh.write(value)
        except OSError:
            return False  # a full/broken spill disk degrades to plain eviction
        previous = self._spilled.pop(key, None)
        if previous is not None:
            self._spill_bytes -= previous[2]
        self._spilled[key] = (name, hashlib.sha256(value).hexdigest(), len(value))
        self._spill_bytes += len(value)
        self.spills += 1
        while self._spill_bytes > self.spill_capacity_bytes and self._spilled:
            evicted = next(iter(self._spilled))
            self._spill_drop_locked(evicted)
            self.spill_evictions += 1
            if evicted != key:
                self._untag_locked(evicted)
        return key in self._spilled

    def _spill_drop_locked(self, key: Hashable) -> None:
        name, _digest, size = self._spilled.pop(key)
        self._spill_bytes -= size
        try:
            os.unlink(os.path.join(self.spill_dir, name))
        except OSError:
            pass

    def _spill_load_locked(self, key: Hashable) -> "bytes | None":
        """Reload + verify + promote a spilled artifact (None on miss)."""
        record = self._spilled.get(key)
        if record is None:
            return None
        name, digest, _size = record
        try:
            with open(os.path.join(self.spill_dir, name), "rb") as fh:
                value = fh.read()
        except OSError:
            value = None
        if value is None or hashlib.sha256(value).hexdigest() != digest:
            # Lost or corrupted on disk: never serve it, forget it.
            self._spill_drop_locked(key)
            self._untag_locked(key)
            self.spill_corrupt += 1
            return None
        self._spill_drop_locked(key)
        self.spill_hits += 1
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._evict_overflow_locked()
        return value

    # -- public API ---------------------------------------------------------
    def get(self, key: Hashable) -> Any:
        """Return the cached value or ``None`` (counts as hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            value = self._spill_load_locked(key)
            if value is not None:
                return value
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any, tag: Hashable = None) -> None:
        """Insert/refresh an entry, evicting the least recently used.

        ``tag`` (optional) groups the key for :meth:`invalidate` — the
        server tags every artifact with its dataset's content digest.
        """
        with self._lock:
            if key in self._spilled:
                self._spill_drop_locked(key)  # superseded by fresh value
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._tag_locked(key, tag)
            self._evict_overflow_locked()

    def invalidate(self, tag: Hashable) -> int:
        """Drop every artifact tagged ``tag`` from both tiers.

        Returns the number of artifacts dropped.  This is the targeted
        eviction path of a dataset delta push: only the keys derived
        from the superseded digest go, every other dataset's artifacts
        stay hot.
        """
        with self._lock:
            keys = self._tags.pop(tag, set())
            for key in keys:
                self._tag_of.pop(key, None)
                self._entries.pop(key, None)
                if key in self._spilled:
                    self._spill_drop_locked(key)
            self.invalidations += len(keys)
            return len(keys)

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any], tag: Hashable = None
    ) -> tuple[Any, bool]:
        """Return ``(value, served_without_computing)`` for ``key``.

        Exactly one concurrent caller per key runs ``compute``; the
        value is cached and every other caller — concurrent followers
        and later requests alike — receives it without recomputation.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True
                spilled = self._spill_load_locked(key)
                if spilled is not None:
                    return spilled, True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    break  # this caller leads
            # Follower: wait out the leader, then share its outcome.
            # A leader failure is re-raised with its original type, so
            # followers map to the same HTTP status the leader did
            # (e.g. AdmissionError -> 429, not a blanket 400/500).
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.joined += 1
            return flight.value, True

        try:
            value = compute()
        except BaseException as error:  # noqa: BLE001 - relayed to followers
            flight.error = error
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        flight.value = value
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._tag_locked(key, tag)
            self._evict_overflow_locked()
            del self._inflight[key]
        flight.event.set()
        return value, False

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.joined + self.spill_hits + self.misses
            stats = {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "single_flight_joins": self.joined,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "tagged_keys": len(self._tag_of),
                "hit_rate": (
                    (self.hits + self.joined + self.spill_hits) / lookups
                    if lookups else 0.0
                ),
            }
            if self.spill_dir is not None:
                stats["spill"] = {
                    "entries": len(self._spilled),
                    "bytes": self._spill_bytes,
                    "capacity_bytes": self.spill_capacity_bytes,
                    "spills": self.spills,
                    "hits": self.spill_hits,
                    "evictions": self.spill_evictions,
                    "corrupt": self.spill_corrupt,
                }
            return stats

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            for key in list(self._spilled):
                self._spill_drop_locked(key)
            self._spill_bytes = 0
            self._tags.clear()
            self._tag_of.clear()
            self.hits = self.misses = self.evictions = self.joined = 0
            self.spills = self.spill_hits = 0
            self.spill_evictions = self.spill_corrupt = 0
            self.invalidations = 0
