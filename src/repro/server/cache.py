"""Bounded LRU artifact cache with single-flight deduplication.

Artifacts are the exact response bodies the server sends (bytes), keyed
by the full parameter tuple that determines them —
``(dataset digest, endpoint, alpha, h, seed, engine, solver, emd_mode,
…)``.  Because every compute layer underneath is deterministic under a
fixed seed (the bit-identity contracts of PRs 1–6) and dataset
round-trips are lossless, a cache hit is *guaranteed* byte-identical to
recomputation — so a hot ``(alpha, h)`` cell is computed once and
served millions of times.

Single flight: when N requests for the same key arrive concurrently,
exactly one (the *leader*) computes; the rest (the *followers*) block
on the leader's event and receive the same object.  A leader's failure
propagates to its followers but is never cached, so a transient error
doesn't poison the key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.exceptions import ServerError


class _Flight:
    """In-flight computation shared by a leader and its followers."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: "BaseException | None" = None


class ArtifactCache:
    """Thread-safe bounded LRU map with single-flight ``get_or_compute``."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ServerError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._inflight: dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.joined = 0  # followers served by another request's flight

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Any:
        """Return the cached value or ``None`` (counts as hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, served_without_computing)`` for ``key``.

        Exactly one concurrent caller per key runs ``compute``; the
        value is cached and every other caller — concurrent followers
        and later requests alike — receives it without recomputation.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    break  # this caller leads
            # Follower: wait out the leader, then share its outcome.
            # A leader failure is re-raised with its original type, so
            # followers map to the same HTTP status the leader did
            # (e.g. AdmissionError -> 429, not a blanket 400/500).
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.joined += 1
            return flight.value, True

        try:
            value = compute()
        except BaseException as error:  # noqa: BLE001 - relayed to followers
            flight.error = error
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        flight.value = value
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            del self._inflight[key]
        flight.event.set()
        return value, False

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.joined + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "single_flight_joins": self.joined,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (
                    (self.hits + self.joined) / lookups if lookups else 0.0
                ),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = self.joined = 0
