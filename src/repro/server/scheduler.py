"""Cron-style scheduler for recurring re-sparsification jobs.

A :class:`ScheduledTask` fires its action every ``interval`` seconds
from its registration instant.  The schedule is *deterministic in the
clock*: :meth:`Scheduler.tick` fires each due task exactly once and
advances its deadline by whole intervals past ``now`` (a task that
missed several intervals while the process was busy runs once and
records the misses, it does not burst).  With an injected fake clock
the fire sequence is a pure function of the tick times — pinned by the
scheduler-determinism tests.

For real serving, :meth:`Scheduler.run` loops tick/sleep on a
background thread until its stop event is set; the service routes
shutdown through :meth:`Scheduler.close`.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ServerError


@dataclass
class ScheduledTask:
    """One recurring action and its firing state."""

    name: str
    interval: float
    action: Callable[[], None]
    next_run: float
    runs: int = 0
    missed: int = 0
    last_error: "str | None" = field(default=None)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "interval_s": self.interval,
            "runs": self.runs,
            "missed": self.missed,
            "last_error": self.last_error,
        }


class Scheduler:
    """Deterministic interval scheduler with an optional driver thread."""

    def __init__(self, clock=time.monotonic) -> None:
        self.clock = clock
        self._tasks: dict[str, ScheduledTask] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- registration --------------------------------------------------------
    def add(
        self,
        name: str,
        interval: float,
        action: Callable[[], None],
        delay: "float | None" = None,
    ) -> ScheduledTask:
        """Register a recurring task; first run after ``delay`` (default:
        one full ``interval``).  Re-adding a name replaces the task."""
        if interval <= 0:
            raise ServerError(f"interval must be positive, got {interval}")
        first = self.clock() + (interval if delay is None else delay)
        task = ScheduledTask(name=name, interval=float(interval),
                             action=action, next_run=first)
        with self._lock:
            self._tasks[name] = task
        return task

    def remove(self, name: str) -> bool:
        with self._lock:
            return self._tasks.pop(name, None) is not None

    def tasks(self) -> list[dict]:
        with self._lock:
            return [task.describe() for task in self._tasks.values()]

    # -- firing --------------------------------------------------------------
    def tick(self, now: "float | None" = None) -> list[str]:
        """Fire every due task once; return the fired names in order.

        Tasks fire in deadline order (name as the tie-break) and their
        deadlines advance by whole intervals strictly past ``now``, so
        the fire sequence is a pure function of the tick times.
        """
        now = self.clock() if now is None else now
        with self._lock:
            due = sorted(
                (task for task in self._tasks.values() if task.next_run <= now),
                key=lambda task: (task.next_run, task.name),
            )
            for task in due:
                intervals = math.floor((now - task.next_run) / task.interval) + 1
                task.missed += intervals - 1
                task.next_run += intervals * task.interval
                task.runs += 1
        fired = []
        for task in due:
            try:
                task.action()
                task.last_error = None
            except Exception as error:  # noqa: BLE001 - keep the loop alive
                task.last_error = f"{type(error).__name__}: {error}"
            fired.append(task.name)
        return fired

    def next_deadline(self) -> "float | None":
        with self._lock:
            if not self._tasks:
                return None
            return min(task.next_run for task in self._tasks.values())

    # -- background driver ---------------------------------------------------
    def start(self, poll: float = 0.5) -> None:
        """Run the tick loop on a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run, args=(poll,), name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def run(self, poll: float = 0.5) -> None:
        while not self._stop.is_set():
            self.tick()
            deadline = self.next_deadline()
            timeout = poll if deadline is None else min(
                poll, max(deadline - self.clock(), 0.0)
            )
            self._stop.wait(timeout)

    def close(self) -> None:
        """Stop the driver thread (if any) and forget every task."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            self._tasks.clear()
