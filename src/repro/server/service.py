"""The sparsification service: jobs, datasets, artifacts, schedules.

:class:`SparsifierService` is the worker core the HTTP layer fronts.
A request becomes a :class:`~repro.server.queue.Job` only on a cache
miss; the artifact cache (keyed by the full parameter tuple including
the dataset's content digest) intercepts repeats and deduplicates
concurrent identical requests down to one computation (single flight).
Job workers are plain threads claiming from the priority queue — the
heavy lifting inside a job is numpy (and optionally a process pool via
``mc_workers``), so threads overlap fine — and every estimate job
scopes its :class:`~repro.sampling.MonteCarloEstimator` with a context
manager, so no process pool outlives a completed job batch.

Determinism contract: artifacts are canonical JSON (sorted keys) whose
payload is a pure function of ``(dataset digest, endpoint params,
seed)`` — the compute layers underneath are bit-identical under a fixed
seed regardless of engine parallelism, so a cache hit is byte-identical
to recomputation and the cache key can ignore ``mc_workers``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.backbone import BackbonePlan
from repro.core.delta import EdgeDeltaBatch, apply_delta
from repro.core.grid import gdb_grid, objective_rows
from repro.core.sparsify import parse_variant, sparsify
from repro.datasets.io import (
    content_digest,
    format_edge_list,
    graph_digest,
    parse_edge_list,
)
from repro.exceptions import AdmissionError, ServerError
from repro.server.cache import ArtifactCache
from repro.server.meter import ThroughputMeter
from repro.server.queue import PriorityJobQueue
from repro.server.scheduler import Scheduler

#: Lower value = more urgent.  Interactive estimates beat sparsify jobs
#: beat grid sweeps; scheduler-driven refreshes yield to everything.
DEFAULT_PRIORITIES = {"estimate": 10, "sparsify": 20, "grid": 30}
REFRESH_PRIORITY = 60

_ESTIMATE_QUERIES = (
    "reliability", "distance", "pagerank", "clustering", "connectivity"
)


def _normalise_backend(params: dict) -> str:
    """Validate the optional ``backend`` request parameter.

    Part of the cache key: non-reference backends are only
    tolerance-equivalent to the numpy reference, so their artifacts must
    never collide with (or overwrite) reference artifacts.
    """
    from repro.backend import available_backends

    backend = str(params.pop("backend", "numpy"))
    if backend not in available_backends():
        raise ServerError(
            f"unknown or unavailable backend {backend!r}; this server "
            f"offers {sorted(available_backends())}"
        )
    return backend


@dataclass
class ServerConfig:
    """Tunables for the job server."""

    host: str = "127.0.0.1"
    port: int = 8765
    queue_depth: int = 64          # admission-control bound (429 beyond it)
    cache_capacity: int = 256      # artifact LRU entries
    workers: int = 2               # job worker threads
    mc_workers: int = 1            # process-pool width inside estimate jobs
    max_samples: int = 100_000     # per-request Monte-Carlo world cap
    max_grid_cells: int = 256      # per-request (alpha, h) grid cap
    dataset_capacity: int = 16     # parsed graphs + plans kept in RAM
    request_timeout: float = 600.0  # seconds a request waits on its job
    datasets_root: "str | None" = None  # confine dataset paths when set
    cache_spill_dir: "str | None" = None  # disk tier for evicted artifacts
    cache_spill_mb: int = 256      # spill tier byte budget (MiB)


def canonical_body(document: dict) -> bytes:
    """Serialise a response document to canonical (byte-stable) JSON."""
    return (json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


class SparsifierService:
    """Long-lived worker core: queue + cache + meter + scheduler."""

    def __init__(self, config: "ServerConfig | None" = None) -> None:
        self.config = config or ServerConfig()
        self.queue = PriorityJobQueue(max_depth=self.config.queue_depth)
        self.cache = ArtifactCache(
            capacity=self.config.cache_capacity,
            spill_dir=self.config.cache_spill_dir,
            spill_capacity_bytes=self.config.cache_spill_mb << 20,
        )
        self.meter = ThroughputMeter()
        self.scheduler = Scheduler()
        self.started = time.monotonic()
        self._datasets: "OrderedDict[str, dict]" = OrderedDict()
        self._datasets_lock = threading.Lock()
        #: dataset path -> live digest after a ``/update`` delta push.
        #: Consulted before the on-disk content so later requests see
        #: the drifted graph; guarded by ``_datasets_lock``.
        self._overlays: dict[str, str] = {}
        self._update_lock = threading.Lock()
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(max(1, self.config.workers))
        ]
        for thread in self._workers:
            thread.start()

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "SparsifierService":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut down: scheduler, queue, worker threads, datasets."""
        self.scheduler.close()
        self._stop.set()
        self.queue.close()
        for thread in self._workers:
            thread.join(timeout=10.0)
        with self._datasets_lock:
            self._datasets.clear()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=0.1)
            if job is not None:
                self.queue.run_job(job, self._execute)

    # -- request entry point -------------------------------------------------
    def handle(self, endpoint: str, params: dict) -> tuple[bytes, bool]:
        """Serve one request: ``(response body, served_from_cache)``.

        Cache hits (and single-flight joins) never touch the queue; a
        miss enqueues one job and waits for it.  Raises
        :class:`~repro.exceptions.AdmissionError` when the queue is
        full and :class:`ReproError` subclasses on bad parameters.
        """
        if endpoint not in DEFAULT_PRIORITIES:
            raise ServerError(f"unknown endpoint {endpoint!r}")
        start = time.perf_counter()
        norm = self._normalise(endpoint, dict(params))
        priority = norm.pop("priority")
        key = canonical_body({"endpoint": endpoint, **norm})
        body, served_from_cache = self.cache.get_or_compute(
            key, lambda: self._compute(endpoint, norm, priority),
            tag=norm["digest"],
        )
        worlds = 0
        if endpoint == "estimate" and not served_from_cache:
            worlds = norm["samples"]
        self.meter.record(endpoint, time.perf_counter() - start, worlds=worlds)
        return body, served_from_cache

    def _compute(self, endpoint: str, norm: dict, priority: int) -> bytes:
        job = self.queue.submit(endpoint, norm, priority=priority)
        return job.wait(timeout=self.config.request_timeout)

    def _execute(self, job) -> bytes:
        if job.kind == "sparsify":
            return self._run_sparsify(job.params)
        if job.kind == "estimate":
            return self._run_estimate(job.params)
        if job.kind == "grid":
            return self._run_grid(job.params)
        if job.kind == "drift_refresh":
            body = self._run_sparsify(job.params["norm"])
            self.cache.put(job.params["key"], body,
                           tag=job.params["norm"]["digest"])
            return body
        raise ServerError(f"unknown job kind {job.kind!r}")

    # -- parameter normalisation ---------------------------------------------
    def _normalise(self, endpoint: str, params: dict) -> dict:
        """Canonicalise request params (also the cache-key material).

        Every field is defaulted and type-coerced here so two requests
        meaning the same computation produce identical keys.
        """
        if not isinstance(params, dict):
            raise ServerError("request body must be a JSON object")
        dataset = params.pop("dataset", None)
        if not dataset or not isinstance(dataset, str):
            raise ServerError("request needs a 'dataset' path")
        digest = self._digest(dataset)
        priority = params.pop("priority", DEFAULT_PRIORITIES[endpoint])
        norm: dict = {
            "dataset": dataset,
            "digest": digest,
            "seed": int(params.pop("seed", 0)),
            "priority": int(priority),
        }
        if endpoint == "sparsify":
            if "alpha" not in params:
                raise ServerError("sparsify needs an 'alpha' in (0, 1)")
            norm.update(
                alpha=float(params.pop("alpha")),
                variant=str(params.pop("variant", "EMD^R-t")),
                h=float(params.pop("h", 0.05)),
                engine=str(params.pop("engine", "vector")),
                lp_solver=str(params.pop("lp_solver", "highs")),
                emd_mode=str(params.pop("emd_mode", "eager")),
                backend=_normalise_backend(params),
            )
            spec = parse_variant(norm["variant"])  # fail fast on bad notation
            if norm["backend"] != "numpy" and spec.method != "gdb":
                raise ServerError(
                    f"backend {norm['backend']!r} only applies to GDB "
                    f"variants, not {norm['variant']!r}"
                )
            if not 0.0 < norm["alpha"] < 1.0:
                raise ServerError(f"alpha must be in (0, 1), got {norm['alpha']}")
        elif endpoint == "estimate":
            norm.update(
                query=str(params.pop("query", "reliability")),
                samples=int(params.pop("samples", 200)),
                pairs=int(params.pop("pairs", 50)),
                weighted=bool(params.pop("weighted", False)),
                backend=_normalise_backend(params),
            )
            if norm["query"] not in _ESTIMATE_QUERIES:
                raise ServerError(
                    f"query must be one of {_ESTIMATE_QUERIES}, "
                    f"got {norm['query']!r}"
                )
            if norm["weighted"] and norm["query"] != "distance":
                raise ServerError("weighted only applies to the distance query")
            if not 1 <= norm["samples"] <= self.config.max_samples:
                raise ServerError(
                    f"samples must be in [1, {self.config.max_samples}]"
                )
        elif endpoint == "grid":
            alphas = [float(a) for a in params.pop("alphas", [0.2, 0.4])]
            h_values = [float(h) for h in params.pop("h_values", [0.05])]
            if not alphas or not h_values:
                raise ServerError("grid needs non-empty alphas and h_values")
            if len(alphas) * len(h_values) > self.config.max_grid_cells:
                raise ServerError(
                    f"grid larger than {self.config.max_grid_cells} cells"
                )
            k_raw = params.pop("k", 1)
            norm.update(
                alphas=alphas,
                h_values=h_values,
                k=k_raw if k_raw == "n" else int(k_raw),
                relative=bool(params.pop("relative", False)),
                backbone_method=str(params.pop("backbone_method", "bgi")),
                engine=str(params.pop("engine", "vector")),
                backend=_normalise_backend(params),
            )
        if params:
            raise ServerError(
                f"unknown parameters for {endpoint}: {sorted(params)}"
            )
        return norm

    # -- dataset registry ----------------------------------------------------
    def _resolve_path(self, dataset: str) -> str:
        root = self.config.datasets_root
        if root is None:
            return dataset
        resolved = os.path.realpath(os.path.join(root, dataset))
        if os.path.commonpath([resolved, os.path.realpath(root)]) != \
                os.path.realpath(root):
            raise ServerError(f"dataset path {dataset!r} escapes datasets root")
        return resolved

    def _read_bytes(self, dataset: str) -> bytes:
        path = self._resolve_path(dataset)
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except OSError as error:
            raise ServerError(f"cannot read dataset {dataset!r}: {error}") \
                from error

    def _sniff_binary(self, dataset: str) -> bool:
        """Whether the file starts with the binary dataset magic."""
        from repro.datasets.binary_io import is_binary_data

        path = self._resolve_path(dataset)
        try:
            with open(path, "rb") as fh:
                return is_binary_data(fh.read(4))
        except OSError as error:
            raise ServerError(f"cannot read dataset {dataset!r}: {error}") \
                from error

    def _digest(self, dataset: str) -> str:
        """Content digest of a dataset, binding it to the parsed graph.

        Text datasets: reads the file *once*, digests those bytes, and
        registers the graph parsed from the very same bytes — so the
        digest in a cache key can never name content other than what
        the job computes on, even if the file is rewritten mid-request.

        Binary datasets: the header's payload digest is the content
        digest (O(header), no full read).  Registration memory-maps the
        sections and *verifies* them against that digest, closing the
        same rewrite race from the other side: a digest only ever keys
        mapped content that hashes to it.

        A ``/update`` delta push overlays the dataset path with the
        drifted graph's digest: while the overlaid entry is registered,
        requests resolve to the in-memory drifted graph rather than the
        (now stale) file bytes.  If the entry gets LRU-evicted the
        overlay is dropped and the disk content becomes the truth again
        — deltas are an in-memory view, not a persistence layer.
        """
        with self._datasets_lock:
            overlay = self._overlays.get(dataset)
            if overlay is not None:
                if overlay in self._datasets:
                    self._datasets.move_to_end(overlay)
                    return overlay
                del self._overlays[dataset]  # drifted graph was evicted
        if self._sniff_binary(dataset):
            from repro.datasets.binary_io import binary_digest

            from repro.exceptions import GraphError

            path = self._resolve_path(dataset)
            try:
                digest = binary_digest(path)
            except (OSError, GraphError) as error:
                raise ServerError(
                    f"cannot read binary dataset {dataset!r}: {error}"
                ) from error
            self._register_binary(dataset, digest)
            return digest
        raw = self._read_bytes(dataset)
        digest = content_digest(raw)
        self._register(dataset, digest, raw)
        return digest

    def _register_binary(self, dataset: str, digest: str) -> dict:
        """Memory-map + digest-verify a binary dataset into the registry.

        The mapped arrays are shared by every concurrent job on the
        dataset (one page-cache copy), and verification binds the
        registry entry to the digest used in cache keys.
        """
        with self._datasets_lock:
            entry = self._datasets.get(digest)
            if entry is not None:
                self._datasets.move_to_end(digest)
                return entry
        from repro.datasets.binary_io import read_binary

        from repro.exceptions import GraphError

        path = self._resolve_path(dataset)
        try:
            ds = read_binary(
                path, mmap=True, name=os.path.basename(dataset) or dataset
            )
        except (OSError, GraphError) as error:
            raise ServerError(
                f"cannot read binary dataset {dataset!r}: {error}"
            ) from error
        if ds.digest != digest:
            raise ServerError(
                f"dataset {dataset!r} changed on disk since the request was "
                f"admitted (content digest mismatch); retry the request"
            )
        try:
            ds.verify()
        except GraphError as error:
            raise ServerError(
                f"binary dataset {dataset!r} failed digest verification: "
                f"{error}"
            ) from error
        entry = {
            "graph": ds.graph(), "plan": None, "lock": threading.Lock(),
            "binary": True, "path": path,
        }
        with self._datasets_lock:
            entry = self._datasets.setdefault(digest, entry)
            self._datasets.move_to_end(digest)
            while len(self._datasets) > self.config.dataset_capacity:
                self._datasets.popitem(last=False)
        return entry

    def _register(self, dataset: str, digest: str, raw: bytes) -> dict:
        """Parse ``raw`` (whose digest is ``digest``) into the registry."""
        with self._datasets_lock:
            entry = self._datasets.get(digest)
            if entry is not None:
                self._datasets.move_to_end(digest)
                return entry
        graph = parse_edge_list(
            raw.decode("utf-8"),
            name=os.path.basename(dataset) or dataset,
            source=dataset,
        )
        entry = {"graph": graph, "plan": None, "lock": threading.Lock()}
        with self._datasets_lock:
            entry = self._datasets.setdefault(digest, entry)
            self._datasets.move_to_end(digest)
            while len(self._datasets) > self.config.dataset_capacity:
                self._datasets.popitem(last=False)
        return entry

    def _dataset(self, dataset: str, digest: str) -> dict:
        """The parsed graph (plus a lazily-built plan slot) for a digest.

        Content-addressed: rewriting a file changes its digest and loads
        a fresh entry, so stale graphs are never served.  Bounded LRU
        like the artifact cache.  Normally a registry hit (``_digest``
        registers the graph at request time); if the entry was evicted
        in between, the file is re-read and *verified* against the
        requested digest, so an artifact cached under a digest always
        derives from bytes with that digest.
        """
        with self._datasets_lock:
            entry = self._datasets.get(digest)
            if entry is not None:
                self._datasets.move_to_end(digest)
                return entry
        if self._sniff_binary(dataset):
            # _register_binary rejects a digest mismatch itself.
            return self._register_binary(dataset, digest)
        raw = self._read_bytes(dataset)
        if content_digest(raw) != digest:
            raise ServerError(
                f"dataset {dataset!r} changed on disk since the request was "
                f"admitted (content digest mismatch); retry the request"
            )
        return self._register(dataset, digest, raw)

    def _plan_for(self, entry: dict) -> BackbonePlan:
        """The dataset's memoised BackbonePlan (the plan-reuse hook):
        one Kruskal decomposition serves every request on the graph.
        ``entry['lock']`` serialises construction; the plan itself is
        internally locked, so concurrent jobs may share it freely."""
        with entry["lock"]:
            if entry["plan"] is None:
                entry["plan"] = BackbonePlan(entry["graph"])
            return entry["plan"]

    # -- job bodies ----------------------------------------------------------
    def _run_sparsify(self, norm: dict) -> bytes:
        entry = self._dataset(norm["dataset"], norm["digest"])
        graph = entry["graph"]
        spec = parse_variant(norm["variant"])
        if entry.get("binary") and spec.method not in ("gdb", "emd", "lp"):
            raise ServerError(
                f"variant {norm['variant']!r} needs the dict-backed graph "
                "API; binary (memory-mapped) datasets support the "
                "array-native GDB/EMD/LP variants"
            )
        plan = self._plan_for(entry) if spec.accepts_plan else None
        result = sparsify(
            graph,
            norm["alpha"],
            variant=norm["variant"],
            rng=norm["seed"],
            h=norm["h"],
            engine=norm["engine"],
            backbone_plan=plan,
            lp_solver=norm["lp_solver"],
            emd_mode=norm["emd_mode"],
            backend=norm["backend"],
        )
        return canonical_body({
            "endpoint": "sparsify",
            "digest": norm["digest"],
            "variant": spec.canonical_name,
            "alpha": norm["alpha"],
            "h": norm["h"],
            "seed": norm["seed"],
            "vertices": result.number_of_vertices(),
            "edges": result.number_of_edges(),
            "artifact": format_edge_list(result, header=False),
        })

    def _run_estimate(self, norm: dict) -> bytes:
        from repro.queries import (
            ClusteringCoefficientQuery,
            ConnectivityQuery,
            PageRankQuery,
            ReliabilityQuery,
            ShortestPathQuery,
            sample_vertex_pairs,
        )
        from repro.sampling import MonteCarloEstimator

        entry = self._dataset(norm["dataset"], norm["digest"])
        graph = entry["graph"]
        name = norm["query"]
        if name in ("reliability", "distance"):
            pairs = sample_vertex_pairs(graph, norm["pairs"], rng=norm["seed"])
            query = (
                ReliabilityQuery(pairs) if name == "reliability"
                else ShortestPathQuery(pairs, weighted=norm["weighted"])
            )
        elif name == "pagerank":
            query = PageRankQuery(graph.number_of_vertices())
        elif name == "clustering":
            query = ClusteringCoefficientQuery(graph.number_of_vertices())
        else:
            query = ConnectivityQuery()
        # Context-managed: the estimator's process pool (mc_workers > 1)
        # is reaped with the job, never left behind in the server.
        # Binary datasets hand the pool their on-disk path so workers
        # mmap the arrays instead of receiving them pickled.
        mc_dataset = (
            entry.get("path") if self.config.mc_workers > 1 else None
        )
        with MonteCarloEstimator(
            graph, n_samples=norm["samples"], workers=self.config.mc_workers,
            dataset=mc_dataset, backend=norm["backend"],
        ) as estimator:
            result = estimator.run(query, rng=norm["seed"])
        return canonical_body({
            "endpoint": "estimate",
            "digest": norm["digest"],
            "query": name,
            "weighted": norm["weighted"],
            "samples": norm["samples"],
            "seed": norm["seed"],
            "estimate": result.scalar_estimate(),
            "confidence_width": result.confidence_width(),
        })

    def _run_grid(self, norm: dict) -> bytes:
        entry = self._dataset(norm["dataset"], norm["digest"])
        results = gdb_grid(
            entry["graph"],
            norm["alphas"],
            norm["h_values"],
            k=norm["k"],
            relative=norm["relative"],
            backbone_method=norm["backbone_method"],
            rng=norm["seed"],
            engine=norm["engine"],
            build_graphs=False,
            backbone_plan=self._plan_for(entry),
            backend=norm["backend"],
        )
        return canonical_body({
            "endpoint": "grid",
            "digest": norm["digest"],
            "seed": norm["seed"],
            "k": norm["k"],
            "relative": norm["relative"],
            "cells": objective_rows(results),
        })

    # -- streaming deltas ----------------------------------------------------
    def update(self, params: dict) -> dict:
        """Apply an edge-delta batch to a registered dataset.

        The drifted graph is registered under its *own* content digest
        and overlays the dataset path, the superseded digest's cached
        artifacts are invalidated (only those — other datasets stay
        hot), and the dataset's memoised :class:`BackbonePlan` is
        *repaired* rather than rebuilt, so the next sparsify request
        re-peels only the dirty forest ranks.  With ``resparsify``
        params the refreshed artifact is recomputed eagerly at
        background priority (behind all interactive traffic).
        """
        params = dict(params)
        dataset = params.pop("dataset", None)
        if not dataset or not isinstance(dataset, str):
            raise ServerError("update needs a 'dataset' path")
        updates = params.pop("updates", [])
        inserts = params.pop("inserts", [])
        deletes = params.pop("deletes", [])
        resparsify = params.pop("resparsify", None)
        if params:
            raise ServerError(
                f"unknown parameters for update: {sorted(params)}"
            )
        if resparsify is not None and not isinstance(resparsify, dict):
            raise ServerError("'resparsify' must be a sparsify params object")
        with self._update_lock:  # serialise delta pushes across datasets
            old_digest = self._digest(dataset)
            entry = self._dataset(dataset, old_digest)
            if entry.get("binary"):
                raise ServerError(
                    "update applies to text datasets; binary datasets are "
                    "immutable snapshots (re-export and rewrite instead)"
                )
            with entry["lock"]:
                batch = EdgeDeltaBatch.from_pairs(
                    entry["graph"], updates=updates, inserts=inserts,
                    deletes=deletes,
                )
                applied = apply_delta(entry["graph"], batch, in_place=False)
                new_digest = graph_digest(applied.graph)
                plan = entry["plan"]
                new_plan = plan.clone().repair(applied) \
                    if plan is not None else None
            new_entry = {
                "graph": applied.graph, "plan": new_plan,
                "lock": threading.Lock(),
            }
            with self._datasets_lock:
                new_entry = self._datasets.setdefault(new_digest, new_entry)
                self._datasets.move_to_end(new_digest)
                self._overlays[dataset] = new_digest
                while len(self._datasets) > self.config.dataset_capacity:
                    self._datasets.popitem(last=False)
            invalidated = self.cache.invalidate(old_digest)
        refresh_queued = False
        if resparsify is not None:
            norm = self._normalise(
                "sparsify", {**resparsify, "dataset": dataset}
            )
            norm.pop("priority")
            key = canonical_body({"endpoint": "sparsify", **norm})
            try:
                self.queue.submit(
                    "drift_refresh", {"key": key, "norm": norm},
                    priority=REFRESH_PRIORITY,
                )
                refresh_queued = True
            except AdmissionError:
                pass  # best-effort warm-up; next request recomputes
        return {
            "endpoint": "update",
            "dataset": dataset,
            "old_digest": old_digest,
            "digest": new_digest,
            "updates": int(len(batch.update_eids)),
            "inserts": int(len(batch.insert_ps)),
            "deletes": int(len(batch.delete_eids)),
            "structural": bool(batch.is_structural),
            "invalidated": invalidated,
            "plan_repaired": new_plan is not None,
            "refresh_queued": refresh_queued,
        }

    # -- recurring re-sparsification -----------------------------------------
    def schedule_resparsify(
        self, name: str, params: dict, interval: float,
        delay: "float | None" = None,
    ) -> dict:
        """Register a recurring job refreshing a sparsify artifact.

        Each firing recomputes the artifact at refresh priority (behind
        all interactive traffic) and overwrites the cache entry, so hot
        keys stay warm even across dataset rewrites (the digest — and
        hence the key — tracks the file content at refresh time).
        """
        norm = self._normalise("sparsify", dict(params))
        norm["priority"] = REFRESH_PRIORITY

        def refresh() -> None:
            fresh = self._normalise("sparsify", dict(params))
            fresh["priority"] = REFRESH_PRIORITY
            priority = fresh.pop("priority")
            key = canonical_body({"endpoint": "sparsify", **fresh})
            self.cache.put(key, self._compute("sparsify", fresh, priority),
                           tag=fresh["digest"])

        task = self.scheduler.add(name, interval, refresh, delay=delay)
        return task.describe()

    # -- introspection -------------------------------------------------------
    def status(self) -> dict:
        with self._datasets_lock:
            datasets = len(self._datasets)
        return {
            "uptime_s": time.monotonic() - self.started,
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "datasets_loaded": datasets,
            "schedules": self.scheduler.tasks(),
            "workers": len(self._workers),
            "mc_workers": self.config.mc_workers,
        }

    def metrics(self) -> dict:
        document = self.meter.snapshot()
        document["cache"] = self.cache.stats()
        return document
