"""HTTP/JSON front-end for :class:`~repro.server.service.SparsifierService`.

Stdlib only (``http.server`` threading server — one thread per
connection, the service's own queue/cache do the real concurrency
control).  Endpoints:

``POST /sparsify``
    ``{"dataset": path, "alpha": 0.3, "variant": "EMD^R-t", "seed": 0,
    "h": 0.05, "engine": "vector", "lp_solver": "highs",
    "emd_mode": "eager", "priority": 20}`` → the sparsified edge list
    (``artifact`` field) plus metadata.
``POST /estimate``
    ``{"dataset": path, "query": "reliability", "samples": 200,
    "pairs": 50, "weighted": false, "seed": 0}`` → scalar estimate +
    confidence width.
``POST /grid``
    ``{"dataset": path, "alphas": [...], "h_values": [...], "k": 1,
    "relative": false, "seed": 0}`` → converged objectives per cell.
``POST /update``
    ``{"dataset": path, "updates": [[u, v, p], ...],
    "inserts": [[u, v, p], ...], "deletes": [[u, v], ...],
    "resparsify": {sparsify params}}`` → applies an edge-delta batch to
    the registered dataset, invalidates exactly the superseded digest's
    cached artifacts, repairs the dataset's backbone plan in place of a
    rebuild, and (with ``resparsify``) refreshes the artifact at
    background priority.
``POST /schedule``
    ``{"name": ..., "interval_s": ..., "params": {sparsify params}}``
    → registers a recurring re-sparsification refresh.
``GET /status`` / ``GET /metrics`` / ``GET /healthz``
    Introspection documents.

Responses are canonical JSON.  Cache state rides the ``X-Repro-Cache``
header (``hit`` / ``miss``) so cached bodies stay byte-identical to
computed ones.  Errors: 400 on bad parameters, 404 on unknown paths,
429 when admission control sheds the request, 500 on internal faults.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import AdmissionError, ReproError
from repro.server.service import ServerConfig, SparsifierService, canonical_body

#: Request-body cap (datasets travel by path, not by value).
MAX_BODY_BYTES = 1 << 20


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP verbs/paths onto the service; holds no state itself."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SparsifierService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------------
    def _send(self, status: int, body: bytes,
              extra_headers: "dict | None" = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set when the request body was not (fully) read: leftover
            # body bytes on a kept-alive connection would be parsed as
            # the next request, desyncing every response after this one.
            self.send_header("Connection", "close")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, canonical_body({"error": message}))

    def _read_json(self) -> dict:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            self.close_connection = True
            raise ReproError(
                f"invalid Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            self.close_connection = True
            raise ReproError(f"invalid Content-Length: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ReproError(f"request body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if len(raw) < length:
            self.close_connection = True
            raise ReproError(
                f"request body truncated: expected {length} bytes, "
                f"got {len(raw)}"
            )
        if not raw:
            return {}
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid JSON body: {error}") from error
        if not isinstance(document, dict):
            raise ReproError("request body must be a JSON object")
        return document

    # -- verbs ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, canonical_body({"ok": True}))
        elif path == "/status":
            self._send(200, canonical_body(self.service.status()))
        elif path == "/metrics":
            self._send(200, canonical_body(self.service.metrics()))
        else:
            self._send_error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        endpoint = path.lstrip("/")
        try:
            params = self._read_json()
            if endpoint in ("sparsify", "estimate", "grid"):
                body, hit = self.service.handle(endpoint, params)
                self._send(200, body,
                           {"X-Repro-Cache": "hit" if hit else "miss"})
            elif endpoint == "update":
                self._send(200, canonical_body(
                    self.service.update(dict(params))
                ))
            elif endpoint == "schedule":
                self._send(200, canonical_body(self._schedule(params)))
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except AdmissionError as error:
            self._send(429, canonical_body({"error": str(error)}),
                       {"Retry-After": "1"})
        except (ReproError, ValueError, KeyError, TypeError) as error:
            self._send_error(400, f"{type(error).__name__}: {error}")
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._send_error(500, f"{type(error).__name__}: {error}")

    def _schedule(self, params: dict) -> dict:
        name = str(params.get("name") or "")
        interval = float(params.get("interval_s") or 0.0)
        if not name:
            raise ReproError("schedule needs a 'name'")
        return self.service.schedule_resparsify(
            name, dict(params.get("params") or {}), interval,
            delay=params.get("delay_s"),
        )


class ReproHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server owning a :class:`SparsifierService`."""

    daemon_threads = True

    def __init__(self, config: "ServerConfig | None" = None,
                 service: "SparsifierService | None" = None) -> None:
        self.service = service or SparsifierService(config)
        self.verbose = False
        config = self.service.config
        super().__init__((config.host, config.port), ReproRequestHandler)

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    def close(self) -> None:
        """Stop serving and shut the service down (idempotent)."""
        self.shutdown()
        self.server_close()
        self.service.close()

    def __enter__(self) -> "ReproHTTPServer":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def start_server(config: "ServerConfig | None" = None) -> ReproHTTPServer:
    """Build a server, start its scheduler and accept loop on threads.

    Returns the running server; callers own shutdown via
    :meth:`ReproHTTPServer.close` (or use it as a context manager).
    """
    server = ReproHTTPServer(config)
    server.service.scheduler.start()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    thread.start()
    return server
