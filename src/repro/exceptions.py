"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers
can catch everything coming out of this package with a single handler
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A structural problem with an uncertain graph (bad edge, bad vertex)."""


class ProbabilityError(GraphError):
    """An edge probability outside the half-open interval (0, 1]."""


class NotConnectedError(GraphError):
    """An operation that requires a connected graph received a disconnected one."""


class SparsificationError(ReproError):
    """A sparsifier could not produce a graph with the requested edge budget."""


class CalibrationError(SparsificationError):
    """A benchmark adaptation failed to calibrate its parameter (epsilon / t)."""


class EstimationError(ReproError):
    """A Monte-Carlo estimator was configured or used incorrectly."""


class ServerError(ReproError):
    """A problem in the sparsification job server (bad request, bad state)."""


class AdmissionError(ServerError):
    """The job queue refused a submission (bounded depth exceeded).

    The HTTP layer maps this to ``429 Too Many Requests``.
    """
