"""Experiment harness: one module per paper table / figure.

Each ``run_*`` returns :class:`~repro.experiments.common.ResultTable`
objects (printable, benchmark-consumable).  The ``benchmarks/``
directory wires these into ``pytest-benchmark`` targets; run any module
directly (``python -m repro.experiments.table2``) for a standalone
report at the default ``small`` scale.
"""

from repro.experiments.common import (
    PAPER,
    PAPER_ALPHAS,
    REPRESENTATIVE_EMD,
    REPRESENTATIVE_GDB,
    SCALES,
    SMALL,
    TINY,
    ExperimentScale,
    ResultTable,
)
from repro.experiments.ascii_plot import render_chart
from repro.experiments.fig01 import run_fig01
from repro.experiments.fig04 import run_fig04, run_fig04a, run_fig04b
from repro.experiments.fig05 import run_fig05
from repro.experiments.fig06 import run_fig06
from repro.experiments.fig07 import run_fig07
from repro.experiments.fig08 import run_fig08
from repro.experiments.fig09 import run_fig09, run_fig09_estimation
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.sample_budget import run_sample_budget
from repro.experiments.table2 import TABLE2_VARIANTS, run_table2

__all__ = [
    "ExperimentScale",
    "PAPER",
    "PAPER_ALPHAS",
    "REPRESENTATIVE_EMD",
    "REPRESENTATIVE_GDB",
    "ResultTable",
    "SCALES",
    "SMALL",
    "TABLE2_VARIANTS",
    "TINY",
    "render_chart",
    "run_fig01",
    "run_fig04",
    "run_fig04a",
    "run_fig04b",
    "run_fig05",
    "run_fig06",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig09_estimation",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_sample_budget",
    "run_table2",
]
