"""Fig. 5 — effect of the entropy parameter ``h`` on GDB.

Sweeps ``h in {0, 0.01, 0.05, 0.1, 0.5, 1}``:

(a) MAE of the degree discrepancy vs alpha — ``h = 0`` is worst (every
    entropy-raising move is vetoed), ``h = 1`` is best;
(b) relative entropy ``H(G')/H(G)`` vs alpha — the ordering flips.

The paper picks ``h = 0.05`` as the balanced default.

The sweep runs through :func:`repro.core.grid.gdb_grid`, which builds
the CSR state and one :class:`~repro.core.backbone.BackbonePlan` once
for the whole grid — the maximum-spanning-forest peels are shared
across *alphas*, each alpha's backbone is a peel-prefix slice plus its
seeded top-up, and one backbone + sweep plan per alpha is shared across
every ``h`` — instead of rebuilding everything per grid point.
"""

from __future__ import annotations

from repro.core.backbone import BackbonePlan
from repro.core.grid import gdb_grid
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_reduced,
)
from repro.metrics import degree_discrepancy_mae, relative_entropy

H_VALUES = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0)


def run_fig05(
    scale: ExperimentScale = SMALL,
    h_values: tuple[float, ...] = H_VALUES,
    seed: int = 19,
    engine: str = "vector",
) -> tuple[ResultTable, ResultTable]:
    """Returns ``(mae_table, entropy_table)`` for the h sweep."""
    graph = make_flickr_reduced(scale, seed=seed)
    mae = ResultTable(
        title=f"Fig. 5(a) — GDB degree-MAE vs h ({graph.name})",
        headers=["h"] + [f"{int(a * 100)}%" for a in scale.alphas],
    )
    entropy = ResultTable(
        title=f"Fig. 5(b) — relative entropy H(G')/H(G) vs h ({graph.name})",
        headers=["h"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes="larger h -> better MAE but higher entropy; paper picks h=0.05",
    )
    # One state + one backbone plan for the grid, one backbone + sweep
    # plan per alpha, shared across h values so the sweep isolates h.
    # Cells are reduced to their two metrics on the spot, so only one
    # materialised graph is alive at a time.
    def to_metrics(cell):
        return (
            degree_discrepancy_mae(graph, cell.graph),
            relative_entropy(cell.graph, graph),
        )

    metrics = gdb_grid(
        graph,
        alphas=scale.alphas,
        h_values=h_values,
        rng=seed,
        engine=engine,
        consume=to_metrics,
        backbone_plan=BackbonePlan(graph),
    )
    for h in h_values:
        mae_row: list = [h]
        entropy_row: list = [h]
        for alpha in scale.alphas:
            cell_mae, cell_entropy = metrics[(alpha, h)]
            mae_row.append(cell_mae)
            entropy_row.append(cell_entropy)
        mae.rows.append(mae_row)
        entropy.rows.append(entropy_row)
    return mae, entropy


if __name__ == "__main__":
    for table in run_fig05():
        print(table)
        print()
