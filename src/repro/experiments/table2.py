"""Table 2 — MAE of absolute degree discrepancy across variants.

Sweeps the proposed method variants (LP, GDB^A, GDB^R, GDB^A_2, GDB^A_n,
EMD^A, EMD^R, each with random and BGI ``-t`` backbones) over the
paper's sparsification ratios on the "Flickr reduced" dataset (Forest
Fire sample).  The paper's qualitative findings to check:

- GDB^A_n is worst by far for alpha > E[p];
- BGI (``-t``) backbones help all variants at moderate/large alpha;
- EMD variants beat the corresponding GDB at alpha > 8%;
- EMD^R-t is the best overall; GDB wins at alpha = 8%.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_reduced,
)
from repro.metrics import degree_discrepancy_mae

#: Table 2's row order.
TABLE2_VARIANTS = (
    "LP", "GDB^A", "GDB^R", "GDB^A_2", "GDB^A_n", "EMD^A", "EMD^R",
    "LP-t", "GDB^A-t", "GDB^R-t", "EMD^A-t", "EMD^R-t",
)


def run_table2(
    scale: ExperimentScale = SMALL,
    variants: tuple[str, ...] = TABLE2_VARIANTS,
    seed: int = 13,
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> ResultTable:
    """MAE of ``delta_A(u)`` for every variant x alpha (Table 2)."""
    graph = make_flickr_reduced(scale, seed=seed)
    table = ResultTable(
        title=(
            f"Table 2 — MAE of degree discrepancy delta_A(u) "
            f"({graph.name}: |V|={graph.number_of_vertices()}, "
            f"|E|={graph.number_of_edges()})"
        ),
        headers=["variant"] + [f"{int(a * 100)}%" for a in scale.alphas],
    )
    for variant in variants:
        row: list = [variant]
        for alpha in scale.alphas:
            sparsified = sparsify(
                graph, alpha, variant=variant, rng=seed,
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            row.append(degree_discrepancy_mae(graph, sparsified))
        table.rows.append(row)
    return table


if __name__ == "__main__":
    print(run_table2())
