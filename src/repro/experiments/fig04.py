"""Fig. 4 — cut-size discrepancy MAE and LP/GDB/EMD running time.

(a) MAE of the cut discrepancy ``delta_A(S)`` over sampled vertex sets
    for the main variants, versus alpha (Flickr reduced).
(b) Execution time of LP vs GDB vs EMD versus alpha — GDB < EMD << LP.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_reduced,
    timed,
)
from repro.metrics import sample_cut_sets, sampled_cut_discrepancy_mae

FIG4A_VARIANTS = ("EMD^R-t", "EMD^A", "GDB^R-t", "GDB^A", "GDB^A_2", "GDB^A_n")


def run_fig04a(
    scale: ExperimentScale = SMALL,
    variants: tuple[str, ...] = FIG4A_VARIANTS,
    seed: int = 17,
    engine: str = "vector",
) -> ResultTable:
    """MAE of ``delta_A(S)`` over sampled k-cuts vs alpha (Fig. 4a)."""
    graph = make_flickr_reduced(scale, seed=seed)
    n = graph.number_of_vertices()
    cut_sets = sample_cut_sets(n, samples_per_k=scale.cut_samples_per_k, rng=seed)
    table = ResultTable(
        title=f"Fig. 4(a) — MAE of cut discrepancy delta_A(S) ({graph.name})",
        headers=["variant"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes=f"{len(cut_sets)} sampled cuts across cardinality ladder",
    )
    for variant in variants:
        row: list = [variant]
        for alpha in scale.alphas:
            sparsified = sparsify(
                graph, alpha, variant=variant, rng=seed, engine=engine
            )
            row.append(
                sampled_cut_discrepancy_mae(graph, sparsified, cut_sets=cut_sets)
            )
        table.rows.append(row)
    return table


def run_fig04b(
    scale: ExperimentScale = SMALL,
    seed: int = 17,
    engine: str = "vector",
) -> ResultTable:
    """Wall-clock seconds of LP vs GDB vs EMD vs alpha (Fig. 4b)."""
    graph = make_flickr_reduced(scale, seed=seed)
    table = ResultTable(
        title=f"Fig. 4(b) — sparsification time, seconds ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes="expect LP >> EMD > GDB at every alpha",
    )
    for variant in ("LP-t", "GDB^A-t", "EMD^A-t"):
        row: list = [variant]
        for alpha in scale.alphas:
            _, seconds = timed(
                sparsify, graph, alpha, variant=variant, rng=seed, engine=engine
            )
            row.append(seconds)
        table.rows.append(row)
    return table


if __name__ == "__main__":
    print(run_fig04a())
    print()
    print(run_fig04b())
