"""Fig. 4 — cut-size discrepancy MAE and LP/GDB/EMD running time.

(a) MAE of the cut discrepancy ``delta_A(S)`` over sampled vertex sets
    for the main variants, versus alpha (Flickr reduced).
(b) Execution time of LP vs GDB vs EMD versus alpha — GDB < EMD << LP.

Both panels share one :class:`~repro.core.backbone.BackbonePlan`: the
``-t`` variants of a given alpha use the *same* BGI backbone (and the
``-t``-less ones the same random backbone), so the plan memoises each
``(method, alpha, seed)`` backbone instead of re-running Kruskal +
top-up once per variant.  Panel (b) therefore times the optimisation
cores over identical seed backbones; the plan's one-off construction is
reported separately in its table notes.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.backbone import BackbonePlan
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_reduced,
    plan_for_variant,
    timed,
)
from repro.metrics import sample_cut_sets, sampled_cut_discrepancy_mae

FIG4A_VARIANTS = ("EMD^R-t", "EMD^A", "GDB^R-t", "GDB^A", "GDB^A_2", "GDB^A_n")


def run_fig04a(
    scale: ExperimentScale = SMALL,
    variants: tuple[str, ...] = FIG4A_VARIANTS,
    seed: int = 17,
    engine: str = "vector",
    graph=None,
    backbone_plan: "BackbonePlan | None" = None,
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> ResultTable:
    """MAE of ``delta_A(S)`` over sampled k-cuts vs alpha (Fig. 4a)."""
    if graph is None:
        graph = make_flickr_reduced(scale, seed=seed)
    plan = backbone_plan if backbone_plan is not None else BackbonePlan(graph)
    n = graph.number_of_vertices()
    cut_sets = sample_cut_sets(n, samples_per_k=scale.cut_samples_per_k, rng=seed)
    table = ResultTable(
        title=f"Fig. 4(a) — MAE of cut discrepancy delta_A(S) ({graph.name})",
        headers=["variant"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes=f"{len(cut_sets)} sampled cuts across cardinality ladder; "
        f"one backbone plan shared across all variants",
    )
    for variant in variants:
        row: list = [variant]
        for alpha in scale.alphas:
            sparsified = sparsify(
                graph, alpha, variant=variant, rng=seed, engine=engine,
                backbone_plan=plan_for_variant(plan, variant),
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            row.append(
                sampled_cut_discrepancy_mae(graph, sparsified, cut_sets=cut_sets)
            )
        table.rows.append(row)
    return table


def run_fig04b(
    scale: ExperimentScale = SMALL,
    seed: int = 17,
    engine: str = "vector",
    graph=None,
    backbone_plan: "BackbonePlan | None" = None,
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> ResultTable:
    """Wall-clock seconds of LP vs GDB vs EMD vs alpha (Fig. 4b)."""
    if graph is None:
        graph = make_flickr_reduced(scale, seed=seed)
    plan = backbone_plan if backbone_plan is not None else BackbonePlan(graph)
    # Warm the per-alpha BGI backbones up front so the timed loop
    # measures the optimisation cores over identical seed backbones.
    _, plan_seconds = timed(
        lambda: [plan.backbone(a, rng=seed) for a in scale.alphas]
    )
    table = ResultTable(
        title=f"Fig. 4(b) — sparsification time, seconds ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes=f"expect LP >> EMD > GDB at every alpha; shared backbone "
        f"plan built once in {plan_seconds:.3f}s (excluded from rows)",
    )
    for variant in ("LP-t", "GDB^A-t", "EMD^A-t"):
        row: list = [variant]
        for alpha in scale.alphas:
            _, seconds = timed(
                sparsify, graph, alpha, variant=variant, rng=seed,
                engine=engine, backbone_plan=plan,
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            row.append(seconds)
        table.rows.append(row)
    return table


def run_fig04(
    scale: ExperimentScale = SMALL,
    seed: int = 17,
    engine: str = "vector",
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> tuple[ResultTable, ResultTable]:
    """Both panels off one shared backbone plan."""
    graph = make_flickr_reduced(scale, seed=seed)
    plan = BackbonePlan(graph)
    return (
        run_fig04a(scale, seed=seed, engine=engine, graph=graph,
                   backbone_plan=plan, lp_solver=lp_solver, emd_mode=emd_mode),
        run_fig04b(scale, seed=seed, engine=engine, graph=graph,
                   backbone_plan=plan, lp_solver=lp_solver, emd_mode=emd_mode),
    )


if __name__ == "__main__":
    for table in run_fig04():
        print(table)
        print()
