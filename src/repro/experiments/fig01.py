"""Fig. 1 / introduction worked example.

The paper motivates sparsification with a K4 at edge probability 0.3
(Pr[connected] = 0.219, entropy 0.94 per-edge-normalised) and a 3-edge
spanning tree at 0.6 (Pr[connected] = 0.216).  This experiment
reproduces the exact connectivity probabilities by full possible-world
enumeration and reports the entropies; it also runs GDB on the example
to show the framework recovers a comparable sparsifier automatically.
"""

from __future__ import annotations

from repro.core import GDBConfig, gdb, graph_entropy
from repro.datasets import figure1_graph, figure1_sparsified
from repro.experiments.common import ResultTable
from repro.sampling import exact_connectivity_probability


def run_fig01() -> ResultTable:
    """Exact Pr[connected] and entropy for the Fig. 1 example graphs."""
    original = figure1_graph()
    manual = figure1_sparsified()
    automatic = gdb(
        original, alpha=0.5, config=GDBConfig(h=1.0), backbone_method="bgi",
        rng=1, name="gdb(fig1)",
    )

    table = ResultTable(
        title="Fig. 1 — introductory example (exact, 2^|E| enumeration)",
        headers=["graph", "|E|", "Pr[connected]", "entropy_bits"],
        notes=(
            "paper: Pr=0.219 (original) vs 0.216 (hand-picked sparsifier); "
            "GDB optimises degree discrepancy Delta_1, a different objective, "
            "so its tree carries lower edge probabilities"
        ),
    )
    for graph in (original, manual, automatic):
        table.add_row(
            graph.name,
            graph.number_of_edges(),
            exact_connectivity_probability(graph),
            graph_entropy(graph),
        )
    return table


if __name__ == "__main__":
    print(run_fig01())
