"""Fig. 9 — sparsification running time on the real proxies.

Wall-clock seconds of NI, GDB, EMD versus alpha.  Expected shape: the
proposed methods scale linearly in ``alpha |E|`` and NI is more than an
order of magnitude slower (SP is omitted in the paper's figure because
it takes hours; here it is optional).
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    REPRESENTATIVE_EMD,
    REPRESENTATIVE_GDB,
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
    timed,
)

TIMED_METHODS = ("NI", REPRESENTATIVE_GDB, REPRESENTATIVE_EMD)


def runtime_table(
    graph: UncertainGraph,
    scale: ExperimentScale,
    methods: tuple[str, ...] = TIMED_METHODS,
    seed: int = 37,
) -> ResultTable:
    """Seconds per method per alpha for one dataset."""
    table = ResultTable(
        title=f"Fig. 9 — sparsification time, seconds ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes="expect NI >> EMD > GDB; linear growth in alpha",
    )
    for method in methods:
        row: list = [method]
        for alpha in scale.alphas:
            _, seconds = timed(sparsify, graph, alpha, variant=method, rng=seed)
            row.append(seconds)
        table.rows.append(row)
    return table


def run_fig09(
    scale: ExperimentScale = SMALL, seed: int = 37
) -> dict[str, ResultTable]:
    """Timing tables for both real proxies."""
    return {
        "flickr": runtime_table(make_flickr_proxy(scale), scale, seed=seed),
        "twitter": runtime_table(make_twitter_proxy(scale), scale, seed=seed),
    }


if __name__ == "__main__":
    for table in run_fig09().values():
        print(table)
        print()
