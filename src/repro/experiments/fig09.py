"""Fig. 9 — running time on the real proxies.

Two sweeps share the figure's shape:

- :func:`runtime_table` — wall-clock seconds of the *sparsifiers* (NI,
  GDB, EMD) versus alpha.  Expected shape: the proposed methods scale
  linearly in ``alpha |E|`` and NI is more than an order of magnitude
  slower (SP is omitted in the paper's figure because it takes hours;
  here it is optional).
- :func:`estimation_runtime_table` — wall-clock seconds of the
  Monte-Carlo *query estimation* per query (hop SP next to the
  weighted WSP kernel), through the full ``repeated_estimates``
  protocol.  This driver reaches the estimators indirectly, so it
  surfaces the scale's batching knobs (``mc_batch_size`` /
  ``mc_batched`` / ``mc_workers``) end to end.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    REPRESENTATIVE_EMD,
    REPRESENTATIVE_GDB,
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
    timed,
)
from repro.experiments.queries_common import build_queries
from repro.sampling import repeated_estimates

TIMED_METHODS = ("NI", REPRESENTATIVE_GDB, REPRESENTATIVE_EMD)

#: Queries timed by the estimation sweep: hop BFS next to the weighted
#: delta-stepping kernel on the same pair sample.
ESTIMATION_QUERY_NAMES = ("SP", "WSP", "RL")


def runtime_table(
    graph: UncertainGraph,
    scale: ExperimentScale,
    methods: tuple[str, ...] = TIMED_METHODS,
    seed: int = 37,
) -> ResultTable:
    """Seconds per method per alpha for one dataset."""
    table = ResultTable(
        title=f"Fig. 9 — sparsification time, seconds ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
        notes="expect NI >> EMD > GDB; linear growth in alpha",
    )
    for method in methods:
        row: list = [method]
        for alpha in scale.alphas:
            _, seconds = timed(sparsify, graph, alpha, variant=method, rng=seed)
            row.append(seconds)
        table.rows.append(row)
    return table


def estimation_runtime_table(
    graph: UncertainGraph,
    scale: ExperimentScale,
    query_names: tuple[str, ...] = ESTIMATION_QUERY_NAMES,
    seed: int = 37,
    runs: int | None = None,
) -> ResultTable:
    """Seconds of the repeated-estimates protocol per query.

    The scale's batching knobs ride through unchanged —
    ``mc_batch_size`` bounds the chunk working set, ``mc_batched=False``
    times the legacy per-world loop, ``mc_workers`` fans chunks over a
    process pool — none of which can change the estimates (the
    determinism contract), only the clock.
    """
    runs = max(2, scale.variance_runs // 4) if runs is None else runs
    queries = build_queries(graph, scale, seed=seed, names=query_names)
    table = ResultTable(
        title=f"Fig. 9 — MC estimation time, seconds ({graph.name})",
        headers=["query", "runs", "samples", "seconds"],
        notes="WSP = weighted most-probable-path distances (-log p)",
    )
    for name, query in queries.items():
        _, seconds = timed(
            repeated_estimates, graph, query, runs=runs,
            n_samples=scale.variance_samples, rng=seed,
            batch_size=scale.mc_batch_size, batched=scale.mc_batched,
            workers=scale.mc_workers,
        )
        table.add_row(name, runs, scale.variance_samples, seconds)
    return table


def run_fig09(
    scale: ExperimentScale = SMALL, seed: int = 37
) -> dict[str, ResultTable]:
    """Timing tables for both real proxies."""
    return {
        "flickr": runtime_table(make_flickr_proxy(scale), scale, seed=seed),
        "twitter": runtime_table(make_twitter_proxy(scale), scale, seed=seed),
    }


def run_fig09_estimation(
    scale: ExperimentScale = SMALL, seed: int = 37
) -> dict[str, ResultTable]:
    """Estimation-time tables for both real proxies."""
    return {
        "flickr": estimation_runtime_table(
            make_flickr_proxy(scale), scale, seed=seed
        ),
        "twitter": estimation_runtime_table(
            make_twitter_proxy(scale), scale, seed=seed
        ),
    }


if __name__ == "__main__":
    for tables in (run_fig09(), run_fig09_estimation()):
        for table in tables.values():
            print(table)
            print()
