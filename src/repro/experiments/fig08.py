"""Fig. 8 — relative entropy of the sparsified graphs.

``H(G')/H(G)`` for NI, SP, GDB, EMD: (a)/(b) versus alpha on the real
proxies, (c) versus density on the synthetic sweep at alpha = 16%.
Expected shape: GDB/EMD at least an order of magnitude below NI/SP at
small alpha; ratio increases with alpha but stays below 1; roughly flat
across density.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.backbone import BackbonePlan
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
    plan_for_variant,
)
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.experiments.fig07 import make_density_sweep
from repro.metrics import relative_entropy


def entropy_vs_alpha(
    graph: UncertainGraph, scale: ExperimentScale, seed: int = 31,
    engine: str = "vector", lp_solver: str = "highs", emd_mode: str = "eager",
) -> ResultTable:
    """Relative entropy per method per alpha for one dataset."""
    table = ResultTable(
        title=f"Fig. 8 — relative entropy H(G')/H(G) ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
    )
    plan = BackbonePlan(graph)
    for method in COMPARISON_METHODS:
        row: list = [method]
        for alpha in scale.alphas:
            sparsified = sparsify(
                graph, alpha, variant=method, rng=seed, engine=engine,
                backbone_plan=plan_for_variant(plan, method),
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            row.append(relative_entropy(sparsified, graph))
        table.rows.append(row)
    return table


def entropy_vs_density(
    scale: ExperimentScale, alpha: float = 0.16, seed: int = 31,
    engine: str = "vector", lp_solver: str = "highs", emd_mode: str = "eager",
) -> ResultTable:
    """Relative entropy per method per density (Fig. 8c)."""
    graphs = make_density_sweep(scale, seed=seed)
    table = ResultTable(
        title=f"Fig. 8(c) — relative entropy vs density (alpha={alpha:.0%})",
        headers=["method"] + [f"{int(d * 100)}%" for d in scale.densities],
        notes="paper: roughly constant across density",
    )
    plans = {d: BackbonePlan(g) for d, g in graphs.items()}
    for method in COMPARISON_METHODS:
        row: list = [method]
        for density, graph in graphs.items():
            sparsified = sparsify(
                graph, alpha, variant=method, rng=seed, engine=engine,
                backbone_plan=plan_for_variant(plans[density], method),
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            row.append(relative_entropy(sparsified, graph))
        table.rows.append(row)
    return table


def run_fig08(
    scale: ExperimentScale = SMALL, seed: int = 31, engine: str = "vector",
    lp_solver: str = "highs", emd_mode: str = "eager",
) -> dict[str, ResultTable]:
    """All three panels keyed 'flickr' / 'twitter' / 'density'."""
    return {
        "flickr": entropy_vs_alpha(
            make_flickr_proxy(scale), scale, seed=seed, engine=engine,
            lp_solver=lp_solver, emd_mode=emd_mode,
        ),
        "twitter": entropy_vs_alpha(
            make_twitter_proxy(scale), scale, seed=seed, engine=engine,
            lp_solver=lp_solver, emd_mode=emd_mode,
        ),
        "density": entropy_vs_density(
            scale, seed=seed, engine=engine,
            lp_solver=lp_solver, emd_mode=emd_mode,
        ),
    }


if __name__ == "__main__":
    for table in run_fig08().values():
        print(table)
        print()
