"""Sample-budget experiment: measured N' vs N (the §6.3 payoff).

The paper argues that the sparsified graph's lower entropy translates
into fewer Monte-Carlo samples for the same confidence width
(``N'/N = (sigma'/sigma)^2``).  Figs. 12's variance ratios *predict*
this; here we *measure* it with the adaptive estimator: run sequential
MC on ``G`` and on each method's ``G'`` until a target 95% CI width, and
report the sample counts and their ratio next to the variance-ratio
prediction.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_twitter_proxy,
)
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.queries import ReliabilityQuery, sample_vertex_pairs
from repro.sampling import adaptive_estimate


def run_sample_budget(
    scale: ExperimentScale = SMALL,
    alpha: float = 0.16,
    target_width: float = 0.04,
    seed: int = 61,
    max_samples: int = 8000,
) -> ResultTable:
    """Measured samples-to-width for RL on G and every method's G'."""
    graph = make_twitter_proxy(scale, seed=seed)
    pairs = sample_vertex_pairs(graph, scale.query_pairs, rng=seed)
    query = ReliabilityQuery(pairs)

    table = ResultTable(
        title=(
            f"Sample budget — worlds to reach CI width {target_width} "
            f"on RL (alpha={alpha:.0%}, {graph.name})"
        ),
        headers=["graph", "samples", "estimate", "ci_width", "vs_original"],
        notes="paper 6.3: N'/N = (sigma'/sigma)^2 — sparsified needs fewer",
    )
    base = adaptive_estimate(
        graph, query, target_width, rng=seed, max_samples=max_samples,
        workers=scale.mc_workers,
    )
    table.add_row(
        "original", base.samples_used, base.estimate, base.confidence_width, 1.0
    )
    for method in COMPARISON_METHODS:
        sparsified = sparsify(graph, alpha, variant=method, rng=seed)
        result = adaptive_estimate(
            sparsified, query, target_width, rng=seed, max_samples=max_samples,
            workers=scale.mc_workers,
        )
        table.add_row(
            method,
            result.samples_used,
            result.estimate,
            result.confidence_width,
            result.samples_used / max(base.samples_used, 1),
        )
    return table


if __name__ == "__main__":
    print(run_sample_budget())
