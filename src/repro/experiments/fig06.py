"""Fig. 6 — structural comparison against the benchmarks (real proxies).

Degree-discrepancy MAE and sampled-cut MAE of NI, SP, GDB (= GDB^A) and
EMD (= EMD^R-t) versus alpha on the Flickr and Twitter proxies.  The
paper's shape: the proposed methods beat both benchmarks everywhere,
usually by orders of magnitude; NI is closest to competitive on Twitter
(high edge probabilities saturate the backbone).
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.backbone import BackbonePlan
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    REPRESENTATIVE_EMD,
    REPRESENTATIVE_GDB,
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
    plan_for_variant,
)
from repro.metrics import (
    degree_discrepancy_mae,
    sample_cut_sets,
    sampled_cut_discrepancy_mae,
)

COMPARISON_METHODS = ("NI", "SP", REPRESENTATIVE_GDB, REPRESENTATIVE_EMD)


def structural_comparison(
    graph: UncertainGraph,
    scale: ExperimentScale,
    methods: tuple[str, ...] = COMPARISON_METHODS,
    seed: int = 23,
    engine: str = "vector",
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> tuple[ResultTable, ResultTable]:
    """Degree-MAE and cut-MAE tables (method x alpha) for one dataset."""
    n = graph.number_of_vertices()
    # One backbone plan per dataset: the GDB/EMD variants share their
    # per-(method, alpha) seed backbones instead of re-running Kruskal.
    plan = BackbonePlan(graph)
    cut_sets = sample_cut_sets(n, samples_per_k=scale.cut_samples_per_k, rng=seed)
    degree = ResultTable(
        title=f"Fig. 6 — MAE of delta_A(u) ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
    )
    cuts = ResultTable(
        title=f"Fig. 6 — MAE of delta_A(S) ({graph.name})",
        headers=["method"] + [f"{int(a * 100)}%" for a in scale.alphas],
    )
    for method in methods:
        degree_row: list = [method]
        cut_row: list = [method]
        for alpha in scale.alphas:
            sparsified = sparsify(
                graph, alpha, variant=method, rng=seed, engine=engine,
                backbone_plan=plan_for_variant(plan, method),
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            degree_row.append(degree_discrepancy_mae(graph, sparsified))
            cut_row.append(
                sampled_cut_discrepancy_mae(graph, sparsified, cut_sets=cut_sets)
            )
        degree.rows.append(degree_row)
        cuts.rows.append(cut_row)
    return degree, cuts


def run_fig06(
    scale: ExperimentScale = SMALL,
    seed: int = 23,
    engine: str = "vector",
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> dict[str, tuple[ResultTable, ResultTable]]:
    """Both datasets' structural comparisons, keyed by dataset name."""
    return {
        "flickr": structural_comparison(
            make_flickr_proxy(scale), scale, seed=seed, engine=engine,
            lp_solver=lp_solver, emd_mode=emd_mode,
        ),
        "twitter": structural_comparison(
            make_twitter_proxy(scale), scale, seed=seed, engine=engine,
            lp_solver=lp_solver, emd_mode=emd_mode,
        ),
    }


if __name__ == "__main__":
    for name, (degree, cuts) in run_fig06().items():
        print(degree)
        print()
        print(cuts)
        print()
