"""Shared query construction for the query-quality experiments (6.3)."""

from __future__ import annotations

from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import ExperimentScale
from repro.queries import (
    ClusteringCoefficientQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    sample_vertex_pairs,
)
from repro.sampling import MonteCarloEstimator

QUERY_NAMES = ("PR", "SP", "RL", "CC")

#: Full registry, including the weighted most-probable-path distance
#: (paper's ``-log p`` spanner transform, query WSP) — pass a subset of
#: these to any query-quality driver (fig10/fig11/fig12) as
#: ``query_names``.
ALL_QUERY_NAMES = QUERY_NAMES + ("WSP",)


def make_estimator(
    graph: UncertainGraph,
    scale: ExperimentScale,
    n_samples: int | None = None,
) -> MonteCarloEstimator:
    """Estimator honouring the scale's batching knobs.

    Every query experiment builds its estimators through this helper so
    one scale object configures the whole pipeline (world budget, chunk
    size, batched/legacy path, worker processes).
    """
    return MonteCarloEstimator(
        graph,
        n_samples=scale.mc_samples if n_samples is None else n_samples,
        batch_size=scale.mc_batch_size,
        batched=scale.mc_batched,
        workers=scale.mc_workers,
    )


def build_queries(
    graph: UncertainGraph,
    scale: ExperimentScale,
    seed: int = 41,
    names: tuple[str, ...] = QUERY_NAMES,
) -> dict[str, object]:
    """The paper's four queries (plus weighted SP) for one dataset.

    PR and CC are evaluated on all vertices; SP, WSP and RL on
    ``scale.query_pairs`` random vertex pairs — the paper's protocol
    (section 6.3) at configurable scale.  WSP is the weighted
    most-probable-path variant of SP (``-log p`` transform) and shares
    SP's pair sample so the two are directly comparable.
    """
    n = graph.number_of_vertices()
    queries: dict[str, object] = {}
    if {"SP", "RL", "WSP"} & set(names):
        pairs = sample_vertex_pairs(graph, scale.query_pairs, rng=seed)
    if "PR" in names:
        queries["PR"] = PageRankQuery(n)
    if "SP" in names:
        queries["SP"] = ShortestPathQuery(pairs)
    if "WSP" in names:
        queries["WSP"] = ShortestPathQuery(pairs, weighted=True)
    if "RL" in names:
        queries["RL"] = ReliabilityQuery(pairs)
    if "CC" in names:
        queries["CC"] = ClusteringCoefficientQuery(n)
    return queries
