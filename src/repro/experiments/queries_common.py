"""Shared query construction for the query-quality experiments (6.3)."""

from __future__ import annotations

from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import ExperimentScale
from repro.queries import (
    ClusteringCoefficientQuery,
    PageRankQuery,
    ReliabilityQuery,
    ShortestPathQuery,
    sample_vertex_pairs,
)
from repro.sampling import MonteCarloEstimator

QUERY_NAMES = ("PR", "SP", "RL", "CC")


def make_estimator(
    graph: UncertainGraph,
    scale: ExperimentScale,
    n_samples: int | None = None,
) -> MonteCarloEstimator:
    """Estimator honouring the scale's batching knobs.

    Every query experiment builds its estimators through this helper so
    one scale object configures the whole pipeline (world budget, chunk
    size, batched/legacy path, worker processes).
    """
    return MonteCarloEstimator(
        graph,
        n_samples=scale.mc_samples if n_samples is None else n_samples,
        batch_size=scale.mc_batch_size,
        batched=scale.mc_batched,
        workers=scale.mc_workers,
    )


def build_queries(
    graph: UncertainGraph,
    scale: ExperimentScale,
    seed: int = 41,
    names: tuple[str, ...] = QUERY_NAMES,
) -> dict[str, object]:
    """The paper's four queries for one dataset.

    PR and CC are evaluated on all vertices; SP and RL on
    ``scale.query_pairs`` random vertex pairs — the paper's protocol
    (section 6.3) at configurable scale.
    """
    n = graph.number_of_vertices()
    queries: dict[str, object] = {}
    if "SP" in names or "RL" in names:
        pairs = sample_vertex_pairs(graph, scale.query_pairs, rng=seed)
    if "PR" in names:
        queries["PR"] = PageRankQuery(n)
    if "SP" in names:
        queries["SP"] = ShortestPathQuery(pairs)
    if "RL" in names:
        queries["RL"] = ReliabilityQuery(pairs)
    if "CC" in names:
        queries["CC"] = ClusteringCoefficientQuery(n)
    return queries
