"""Full evaluation report: run every paper experiment in sequence.

``python -m repro.experiments.report [tiny|small|paper] [output.txt]``

Regenerates Table 2 and Figures 1, 4-12 at the requested scale, renders
each as a table plus (where the paper uses a plot) an ASCII chart, and
writes everything to stdout and optionally a file.  This is the
"one-command reproduction" entry point; the per-figure benchmarks in
``benchmarks/`` are the CI-friendly sliced version of the same runs.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    SCALES,
    TINY,
    render_chart,
    run_fig01,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_sample_budget,
    run_table2,
)
from repro.experiments.common import ExperimentScale, ResultTable


def _section(name: str) -> str:
    bar = "=" * 72
    return f"\n{bar}\n{name}\n{bar}"


def generate_report(scale: ExperimentScale = TINY, chart: bool = True) -> str:
    """Run every experiment; returns the full text report."""
    parts: list[str] = [
        f"Uncertain Graph Sparsification — full evaluation (scale={scale.name})",
        time.strftime("generated %Y-%m-%d %H:%M:%S"),
    ]

    def add(name: str, *tables: ResultTable, plot: bool = chart) -> None:
        parts.append(_section(name))
        for table in tables:
            parts.append(table.format())
            if plot and len(table.headers) > 2:
                parts.append(render_chart(table))
            parts.append("")

    add("Fig. 1 — introductory example", run_fig01(), plot=False)
    add("Table 2 — variant sweep", run_table2(scale))
    fig04a, fig04b = run_fig04(scale)  # both panels, one backbone plan
    add("Fig. 4(a) — cut discrepancy", fig04a)
    add("Fig. 4(b) — LP/GDB/EMD time", fig04b)
    add("Fig. 5 — entropy parameter h", *run_fig05(scale))
    for name, (degree, cuts) in run_fig06(scale).items():
        add(f"Fig. 6 — structural comparison ({name})", degree, cuts)
    add("Fig. 7 — error vs density", *run_fig07(scale))
    add("Fig. 8 — relative entropy", *run_fig08(scale).values())
    add("Fig. 9 — sparsification time", *run_fig09(scale).values())
    for name, tables in run_fig10(scale).items():
        add(f"Fig. 10 — query quality ({name})", *tables.values())
    add("Fig. 11 — query quality vs density", *run_fig11(scale).values())
    for name, tables in run_fig12(scale, alphas=(0.08, 0.32)).items():
        add(f"Fig. 12 — relative variance ({name})", *tables.values())
    add("Extension — measured sample budget N'/N",
        run_sample_budget(scale), plot=False)

    return "\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    scale = SCALES.get(argv[0], TINY) if argv else TINY
    report = generate_report(scale)
    print(report)
    if len(argv) > 1:
        with open(argv[1], "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
