"""ASCII line charts for experiment series (matplotlib-free "figures").

The paper's evaluation is figures, not tables; this module renders a
:class:`~repro.experiments.common.ResultTable` whose first column is the
series label and whose remaining columns are y-values over an implicit
x-axis, as a log- or linear-scale ASCII chart.  Used by the experiment
modules' ``__main__`` blocks and handy in terminals without plotting
stacks.
"""

from __future__ import annotations

import math

from repro.experiments.common import ResultTable

_MARKERS = "ox*+#@%&"


def _scale(value: float, lo: float, hi: float, height: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(height - 1, max(0, round(fraction * (height - 1))))


def render_chart(
    table: ResultTable,
    height: int = 12,
    log_y: bool = True,
    title: str | None = None,
) -> str:
    """Render the table as an ASCII chart (one marker per series).

    Parameters
    ----------
    table:
        First column = series label, remaining columns = y values; the
        column headers become the x-axis ticks.
    height:
        Chart height in rows.
    log_y:
        Log-scale the y axis (the paper's plots are mostly log-log).
        Non-positive values are clamped to the smallest positive value.
    """
    x_labels = table.headers[1:]
    series = {row[0]: [float(v) for v in row[1:]] for row in table.rows}
    positive = [v for values in series.values() for v in values if v > 0]
    if not positive:
        return f"{title or table.title}\n(all values non-positive)"
    lo, hi = min(positive), max(positive)
    if log_y and hi / lo < 10:
        log_y = False  # linear is more readable for narrow ranges

    width = max(len(x_labels) * 8, 24)
    grid = [[" "] * width for _ in range(height)]
    x_positions = [
        int(i * (width - 1) / max(len(x_labels) - 1, 1))
        for i in range(len(x_labels))
    ]
    legend = []
    for marker, (label, values) in zip(_MARKERS, series.items()):
        legend.append(f"{marker}={label}")
        for x, value in zip(x_positions, values):
            v = max(value, lo) if log_y else value
            y = _scale(v, lo, hi, height, log_y)
            row = height - 1 - y
            grid[row][x] = marker if grid[row][x] == " " else "!"

    lines = [title or table.title]
    axis = "log" if log_y else "lin"
    lines.append(f"y[{axis}]: {lo:.3g} .. {hi:.3g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    tick_row = [" "] * (width + 1)
    for x, label in zip(x_positions, x_labels):
        for i, ch in enumerate(label[:7]):
            if x + 1 + i <= width:
                tick_row[x + i] = ch
    lines.append(" " + "".join(tick_row).rstrip())
    lines.append("  ".join(legend))
    return "\n".join(lines)
