"""Fig. 10 — earth mover's distance of query results versus alpha.

For each dataset and each query (PR, SP, RL, CC), run Monte-Carlo on the
original graph and on every method's sparsified graph, and report the
mean per-unit earth mover's distance between the outcome distributions
(Eq. 17).  Expected shape: GDB/EMD below NI/SP almost everywhere; SP
(the spanner) poor even on the SP query; errors shrink as alpha grows.

The query registry also accepts ``"WSP"`` — the weighted
most-probable-path distance on the ``-log p`` transform — e.g.
``run_fig10(query_names=("SP", "WSP"))`` compares hop and weighted
error side by side on the same pair sample.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
)
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.experiments.queries_common import QUERY_NAMES, build_queries, make_estimator
from repro.metrics import mean_earth_movers_distance


def query_quality_tables(
    graph: UncertainGraph,
    scale: ExperimentScale,
    methods: tuple[str, ...] = COMPARISON_METHODS,
    query_names: tuple[str, ...] = QUERY_NAMES,
    alphas: tuple[float, ...] | None = None,
    seed: int = 41,
) -> dict[str, ResultTable]:
    """One ``D_em`` table per query for one dataset."""
    alphas = alphas or scale.alphas
    queries = build_queries(graph, scale, seed=seed, names=query_names)
    estimator = make_estimator(graph, scale)
    baseline_outcomes = {
        name: estimator.run(query, rng=seed).outcomes
        for name, query in queries.items()
    }
    tables = {
        name: ResultTable(
            title=f"Fig. 10 — D_em of {name} ({graph.name})",
            headers=["method"] + [f"{int(a * 100)}%" for a in alphas],
        )
        for name in queries
    }
    for method in methods:
        rows = {name: [method] for name in queries}
        for alpha in alphas:
            sparsified = sparsify(graph, alpha, variant=method, rng=seed)
            sparse_estimator = make_estimator(sparsified, scale)
            for name, query in queries.items():
                outcomes = sparse_estimator.run(query, rng=seed + 1).outcomes
                rows[name].append(
                    mean_earth_movers_distance(baseline_outcomes[name], outcomes)
                )
        for name in queries:
            tables[name].rows.append(rows[name])
    return tables


def run_fig10(
    scale: ExperimentScale = SMALL,
    seed: int = 41,
    query_names: tuple[str, ...] = QUERY_NAMES,
) -> dict[str, dict[str, ResultTable]]:
    """Both datasets' query-quality tables, keyed by dataset then query."""
    return {
        "flickr": query_quality_tables(
            make_flickr_proxy(scale), scale, query_names=query_names, seed=seed
        ),
        "twitter": query_quality_tables(
            make_twitter_proxy(scale), scale, query_names=query_names, seed=seed
        ),
    }


if __name__ == "__main__":
    for dataset, tables in run_fig10().items():
        for table in tables.values():
            print(table)
            print()
