"""Shared experiment plumbing: scales, datasets, result tables.

Every paper table/figure has a module in this package exposing a
``run_*`` function that returns a :class:`ResultTable`.  The benchmarks
call these with the ``tiny``/``small`` scales; pass ``paper`` (or a
custom :class:`ExperimentScale`) to push towards the paper's sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from repro.datasets import flickr_like, forest_fire_sample, twitter_like
from repro.utils.rng import ensure_rng

#: The paper's sparsification ratios (Figs. 4-12): 8% .. 64%.
PAPER_ALPHAS = (0.08, 0.16, 0.32, 0.64)

#: The paper's representative variants for benchmark comparisons (6.1):
#: EMD = EMD^R-t (best overall), GDB = GDB^A (best at alpha = 8%).
REPRESENTATIVE_GDB = "GDB^A"
REPRESENTATIVE_EMD = "EMD^R-t"


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling experiment size (dataset / MC budgets).

    The paper's full protocol (78k-vertex Flickr, 500 worlds, 1000
    pairs, 100 variance runs) is hours of pure-Python compute; scales
    shrink every budget while preserving the comparisons.
    """

    name: str
    flickr_n: int = 300
    flickr_avg_degree: int = 40
    twitter_n: int = 300
    twitter_avg_degree: int = 26
    reduced_n: int = 150
    mc_samples: int = 120
    query_pairs: int = 60
    variance_runs: int = 12
    variance_samples: int = 60
    cut_samples_per_k: int = 30
    density_base_n: int = 100
    densities: tuple[float, ...] = (0.15, 0.3, 0.5, 0.9)
    alphas: tuple[float, ...] = PAPER_ALPHAS
    #: Worlds per batched-estimator chunk (None = auto-size from memory).
    mc_batch_size: "int | None" = None
    #: Escape hatch: False runs the estimators world-at-a-time.
    mc_batched: bool = True
    #: Processes for batch-chunk evaluation (1 = in-process, None = one
    #: per CPU); estimates are bit-identical for any value.
    mc_workers: "int | None" = 1

    def __post_init__(self) -> None:
        # The paper assumes alpha >= (|V|-1)/|E| (footnote 7) so spanning
        # backbones are feasible; the defaults keep |E|/|V| high enough
        # for alpha = 8% like the real Flickr (130) / Twitter (25).  The
        # BA generator produces C(a+1, 2) + a (n - a - 1) edges for
        # attach = avg_degree // 2, so check against that exact count.
        for label, n, avg in (
            ("flickr", self.flickr_n, self.flickr_avg_degree),
            ("twitter", self.twitter_n, self.twitter_avg_degree),
        ):
            attach = max(avg // 2, 1)
            m = attach * (attach + 1) // 2 + attach * (n - attach - 1)
            if min(self.alphas) * m < n - 1:
                raise ValueError(
                    f"{label} proxy too sparse for alpha={min(self.alphas)}: "
                    f"{m} edges on {n} vertices cannot host a spanning tree "
                    f"within the budget"
                )


TINY = ExperimentScale(
    name="tiny",
    flickr_n=100, flickr_avg_degree=40, twitter_n=100, twitter_avg_degree=30,
    reduced_n=70, mc_samples=60, query_pairs=30, variance_runs=8,
    variance_samples=40, cut_samples_per_k=20, density_base_n=90,
)

SMALL = ExperimentScale(name="small")

PAPER = ExperimentScale(
    name="paper",
    flickr_n=5000, flickr_avg_degree=130, twitter_n=5000,
    twitter_avg_degree=50, reduced_n=5000, mc_samples=500,
    query_pairs=1000, variance_runs=100, variance_samples=500,
    cut_samples_per_k=1000, density_base_n=1000,
)

SCALES = {"tiny": TINY, "small": SMALL, "paper": PAPER}


@dataclass
class ResultTable:
    """A printable experiment result: title + headers + rows."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def cell(self, row_key, column: str):
        """Value at (first-column == row_key, column header)."""
        idx = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[idx]
        raise KeyError(row_key)

    def format(self) -> str:
        def render(value) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1e4 or 0 < abs(value) < 1e-3:
                    return f"{value:.3e}"
                return f"{value:.4f}"
            return str(value)

        cells = [[render(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def make_flickr_proxy(scale: ExperimentScale, seed: int = 7) -> UncertainGraph:
    """Flickr stand-in at the requested scale."""
    return flickr_like(n=scale.flickr_n, avg_degree=scale.flickr_avg_degree, seed=seed)


def make_twitter_proxy(scale: ExperimentScale, seed: int = 11) -> UncertainGraph:
    """Twitter stand-in at the requested scale."""
    return twitter_like(n=scale.twitter_n, avg_degree=scale.twitter_avg_degree, seed=seed)


def make_flickr_reduced(scale: ExperimentScale, seed: int = 13) -> UncertainGraph:
    """"Flickr reduced": Forest Fire sample of the Flickr proxy (6.1)."""
    base = make_flickr_proxy(scale, seed=seed)
    if scale.reduced_n >= base.number_of_vertices():
        return base
    return forest_fire_sample(base, scale.reduced_n, rng=seed)


def timed(fn, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def plan_for_variant(plan, variant: str):
    """``plan`` if ``variant`` can use one (GDB/EMD/LP/NI), else ``None``.

    The comparison drivers mix plan-aware variants (backbone-seeded
    GDB/EMD/LP, plus NI — which memoises its peel structure on the
    plan) with the SP/ER benchmark methods, which take none; this keeps
    one ``sparsify(..., backbone_plan=plan_for_variant(plan, v))`` call
    site.
    """
    from repro.core.sparsify import parse_variant

    return (
        plan
        if parse_variant(variant).method in ("gdb", "emd", "lp", "ni")
        else None
    )


def geometric_mean(values) -> float:
    """Geometric mean, ignoring non-positive entries (log-scale summaries)."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if len(arr) == 0:
        return float("nan")
    return float(np.exp(np.log(arr).mean()))
