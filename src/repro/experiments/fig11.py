"""Fig. 11 — earth mover's distance versus density (synthetic sweep).

``D_em`` of PR and SP at alpha = 16% across the density ladder.  The
paper's shape: PR error grows with density (node-centric, degree-
correlated — mirrors Fig. 7a), SP error *shrinks* with density
(abundant alternative short paths), and RL is ~0 for every method on
dense graphs (hence omitted, as in the paper).  Pass
``query_names=("SP", "WSP")`` to sweep the weighted most-probable-path
distance alongside the hop distance.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.experiments.common import ExperimentScale, ResultTable, SMALL
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.experiments.fig07 import make_density_sweep
from repro.experiments.queries_common import build_queries, make_estimator
from repro.metrics import mean_earth_movers_distance


def run_fig11(
    scale: ExperimentScale = SMALL,
    alpha: float = 0.16,
    seed: int = 43,
    query_names: tuple[str, ...] = ("PR", "SP"),
) -> dict[str, ResultTable]:
    """``D_em`` of PR / SP per method per density (Fig. 11)."""
    graphs = make_density_sweep(scale, seed=seed)
    headers = ["method"] + [f"{int(d * 100)}%" for d in scale.densities]
    tables = {
        name: ResultTable(
            title=f"Fig. 11 — D_em of {name} vs density (alpha={alpha:.0%})",
            headers=headers,
        )
        for name in query_names
    }
    rows = {name: {m: [m] for m in COMPARISON_METHODS} for name in query_names}
    for graph in graphs.values():
        queries = build_queries(graph, scale, seed=seed, names=query_names)
        estimator = make_estimator(graph, scale)
        baseline = {
            name: estimator.run(query, rng=seed).outcomes
            for name, query in queries.items()
        }
        for method in COMPARISON_METHODS:
            sparsified = sparsify(graph, alpha, variant=method, rng=seed)
            sparse_estimator = make_estimator(sparsified, scale)
            for name, query in queries.items():
                outcomes = sparse_estimator.run(query, rng=seed + 1).outcomes
                rows[name][method].append(
                    mean_earth_movers_distance(baseline[name], outcomes)
                )
    for name in query_names:
        for method in COMPARISON_METHODS:
            tables[name].rows.append(rows[name][method])
    return tables


if __name__ == "__main__":
    for table in run_fig11().values():
        print(table)
        print()
