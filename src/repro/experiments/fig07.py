"""Fig. 7 — structural error versus graph density (synthetic sweep).

Reproduces the paper's synthetic construction: a base induced subgraph
densified with uniform-random edges to 15/30/50/90% of the complete
graph, alpha fixed at 16%.  Every method's error grows with density
(the analysis in 6.2: without redistribution
``MAE ~ p(1 - alpha)|E| / |V|`` is linear in ``|E|``), and EMD grows the
slowest.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.backbone import BackbonePlan
from repro.datasets import densify, flickr_like
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    plan_for_variant,
)
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.metrics import (
    degree_discrepancy_mae,
    sample_cut_sets,
    sampled_cut_discrepancy_mae,
)


def make_density_sweep(scale: ExperimentScale, seed: int = 29):
    """The paper's synthetic datasets: one graph per density level."""
    base = flickr_like(n=scale.density_base_n, avg_degree=8, seed=seed)
    return {
        density: densify(base, density, rng=seed, name=f"synthetic({density:.0%})")
        for density in scale.densities
    }


def run_fig07(
    scale: ExperimentScale = SMALL,
    alpha: float = 0.16,
    seed: int = 29,
    engine: str = "vector",
    lp_solver: str = "highs",
    emd_mode: str = "eager",
) -> tuple[ResultTable, ResultTable]:
    """Degree-MAE and cut-MAE vs density at fixed alpha (Fig. 7)."""
    graphs = make_density_sweep(scale, seed=seed)
    headers = ["method"] + [f"{int(d * 100)}%" for d in scale.densities]
    degree = ResultTable(
        title=f"Fig. 7 — MAE of delta_A(u) vs density (alpha={alpha:.0%})",
        headers=headers,
    )
    cuts = ResultTable(
        title=f"Fig. 7 — MAE of delta_A(S) vs density (alpha={alpha:.0%})",
        headers=headers,
    )
    cut_sets_by_density = {
        d: sample_cut_sets(
            g.number_of_vertices(), samples_per_k=scale.cut_samples_per_k, rng=seed
        )
        for d, g in graphs.items()
    }
    # One backbone plan per density level, shared across methods.
    plans = {d: BackbonePlan(g) for d, g in graphs.items()}
    for method in COMPARISON_METHODS:
        degree_row: list = [method]
        cut_row: list = [method]
        for density, graph in graphs.items():
            sparsified = sparsify(
                graph, alpha, variant=method, rng=seed, engine=engine,
                backbone_plan=plan_for_variant(plans[density], method),
                lp_solver=lp_solver, emd_mode=emd_mode,
            )
            degree_row.append(degree_discrepancy_mae(graph, sparsified))
            cut_row.append(
                sampled_cut_discrepancy_mae(
                    graph, sparsified, cut_sets=cut_sets_by_density[density]
                )
            )
        degree.rows.append(degree_row)
        cuts.rows.append(cut_row)
    return degree, cuts


if __name__ == "__main__":
    for table in run_fig07():
        print(table)
        print()
