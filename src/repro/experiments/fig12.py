"""Fig. 12 — relative variance of the MC estimator versus alpha.

The paper's systems argument: GDB/EMD cut the estimator variance by
orders of magnitude (their aggressive redistribution drives many edges
to probability 1, shrinking entropy), while NI/SP often *increase* it
above the original graph's.  Reported per query (PR, SP, RL, CC) as
``sigma-hat(G') / sigma-hat(G)`` from the repeated-runs protocol.
"""

from __future__ import annotations

from repro.core import sparsify
from repro.core.uncertain_graph import UncertainGraph
from repro.experiments.common import (
    ExperimentScale,
    ResultTable,
    SMALL,
    make_flickr_proxy,
    make_twitter_proxy,
)
from repro.experiments.fig06 import COMPARISON_METHODS
from repro.experiments.queries_common import QUERY_NAMES, build_queries
from repro.sampling import repeated_estimates, unbiased_variance


def variance_tables(
    graph: UncertainGraph,
    scale: ExperimentScale,
    methods: tuple[str, ...] = COMPARISON_METHODS,
    query_names: tuple[str, ...] = QUERY_NAMES,
    alphas: tuple[float, ...] | None = None,
    seed: int = 47,
) -> dict[str, ResultTable]:
    """One relative-variance table per query for one dataset."""
    alphas = alphas or scale.alphas
    queries = build_queries(graph, scale, seed=seed, names=query_names)
    tables = {
        name: ResultTable(
            title=f"Fig. 12 — relative variance of {name} ({graph.name})",
            headers=["method"] + [f"{int(a * 100)}%" for a in alphas],
            notes="expect GDB/EMD << 1; NI/SP around or above 1",
        )
        for name in queries
    }
    # The original graph's estimator variance is the shared denominator:
    # compute it once per query.
    baseline_variance = {
        name: unbiased_variance(
            repeated_estimates(
                graph, query, runs=scale.variance_runs,
                n_samples=scale.variance_samples, rng=seed,
                batch_size=scale.mc_batch_size, batched=scale.mc_batched,
                workers=scale.mc_workers,
            )
        )
        for name, query in queries.items()
    }
    for method in methods:
        rows = {name: [method] for name in queries}
        for alpha in alphas:
            sparsified = sparsify(graph, alpha, variant=method, rng=seed)
            for name, query in queries.items():
                variance = unbiased_variance(
                    repeated_estimates(
                        sparsified, query, runs=scale.variance_runs,
                        n_samples=scale.variance_samples, rng=seed + 1,
                        batch_size=scale.mc_batch_size, batched=scale.mc_batched,
                        workers=scale.mc_workers,
                    )
                )
                denominator = baseline_variance[name]
                if denominator <= 0.0:
                    rows[name].append(float("inf") if variance > 0 else 1.0)
                else:
                    rows[name].append(variance / denominator)
        for name in queries:
            tables[name].rows.append(rows[name])
    return tables


def run_fig12(
    scale: ExperimentScale = SMALL,
    seed: int = 47,
    query_names: tuple[str, ...] = QUERY_NAMES,
    alphas: tuple[float, ...] | None = None,
) -> dict[str, dict[str, ResultTable]]:
    """Both datasets' relative-variance tables."""
    return {
        "flickr": variance_tables(
            make_flickr_proxy(scale), scale, query_names=query_names,
            alphas=alphas, seed=seed,
        ),
        "twitter": variance_tables(
            make_twitter_proxy(scale), scale, query_names=query_names,
            alphas=alphas, seed=seed,
        ),
    }


if __name__ == "__main__":
    for dataset, tables in run_fig12().items():
        for table in tables.values():
            print(table)
            print()
