"""Structural quality metrics (paper sections 6.1-6.2).

- Mean absolute error of the degree discrepancy ``delta_A(u)`` /
  ``delta_R(u)`` over all vertices (Table 2, Figs. 6-7 left columns),
- MAE of the cut discrepancy ``delta_A(S)`` over *sampled* cuts: the
  number of cuts is exponential, so — like the paper — we draw random
  vertex sets of each cardinality ``k`` and average (Figs. 4(a), 6-7
  right columns),
- relative entropy ``H(G')/H(G)`` re-exported for convenience (Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.core.discrepancy import degree_discrepancy_vector
from repro.core.entropy import relative_entropy
from repro.core.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "degree_discrepancy_mae",
    "sampled_cut_discrepancy_mae",
    "sample_cut_sets",
    "relative_entropy",
]


def degree_discrepancy_mae(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    relative: bool = False,
) -> float:
    """MAE of the per-vertex degree discrepancy (Table 2's metric)."""
    deltas = degree_discrepancy_vector(original, sparsified, relative=relative)
    return float(np.abs(deltas).mean())


def sample_cut_sets(
    n: int,
    cardinalities: "list[int] | None" = None,
    samples_per_k: int = 50,
    rng: "int | np.random.Generator | None" = None,
) -> list[np.ndarray]:
    """Random vertex sets for cut evaluation.

    The paper samples 1000 cuts per cardinality for ``k`` from 1 to
    ``|V|``; that is quadratic in ``n``, so the default here draws a
    geometric ladder of cardinalities (1, 2, 4, ... n/2) — callers can
    pass the full range to match the paper exactly.
    """
    rng = ensure_rng(rng)
    if cardinalities is None:
        cardinalities = []
        k = 1
        while k <= max(n // 2, 1):
            cardinalities.append(k)
            k *= 2
    sets: list[np.ndarray] = []
    for k in cardinalities:
        k = min(max(int(k), 1), n - 1) if n > 1 else 1
        for _ in range(samples_per_k):
            sets.append(rng.choice(n, size=k, replace=False))
    return sets


def sampled_cut_discrepancy_mae(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    cut_sets: "list[np.ndarray] | None" = None,
    samples_per_k: int = 50,
    rng: "int | np.random.Generator | None" = None,
    relative: bool = False,
) -> float:
    """MAE of ``delta(S)`` over sampled vertex sets (Fig. 4(a) metric).

    ``cut_sets`` contains arrays of *dense vertex ids* (positions in
    ``original.vertex_indexer()``); when omitted they are drawn by
    :func:`sample_cut_sets`.  Expected cut sizes are computed
    vectorised: for a 0/1 membership vector ``s``, an edge crosses the
    cut iff its endpoints' memberships differ.
    """
    n = original.number_of_vertices()
    if cut_sets is None:
        cut_sets = sample_cut_sets(n, samples_per_k=samples_per_k, rng=rng)

    def cut_sizes(graph: UncertainGraph) -> np.ndarray:
        edges = graph.edge_index_array()
        probs = np.array(graph.probability_array())
        sizes = np.empty(len(cut_sets), dtype=np.float64)
        membership = np.zeros(n, dtype=bool)
        for i, subset in enumerate(cut_sets):
            membership[subset] = True
            crossing = membership[edges[:, 0]] != membership[edges[:, 1]]
            sizes[i] = probs[crossing].sum()
            membership[subset] = False
        return sizes

    original_sizes = cut_sizes(original)
    sparsified_sizes = cut_sizes(sparsified)
    deltas = original_sizes - sparsified_sizes
    if relative:
        with np.errstate(divide="ignore", invalid="ignore"):
            deltas = np.where(original_sizes > 0, deltas / original_sizes, 0.0)
    return float(np.abs(deltas).mean())
