"""Relative-variance metric (paper section 6.3, Fig. 12).

The paper's headline systems argument: a sparsified graph with lower
entropy yields a lower-variance MC estimator, hence fewer samples for
the same confidence width.  ``relative_variance`` packages the full
protocol: repeated estimation on ``G`` and ``G'``, unbiased variances,
and their ratio ``sigma-hat(G') / sigma-hat(G)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.uncertain_graph import UncertainGraph
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.base import Query
from repro.sampling.monte_carlo import (
    repeated_estimates,
    required_sample_ratio,
    unbiased_variance,
)
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class VarianceComparison:
    """Variance protocol output for one (graph, sparsified, query) triple."""

    variance_original: float
    variance_sparsified: float

    @property
    def relative(self) -> float:
        """``sigma-hat(G')^2 / sigma-hat(G)^2`` (Fig. 12's y-axis)."""
        if self.variance_original == 0.0:
            return float("inf") if self.variance_sparsified > 0 else 1.0
        return self.variance_sparsified / self.variance_original

    @property
    def sample_ratio(self) -> float:
        """``N'/N`` needed for equal confidence width (section 6.3)."""
        return required_sample_ratio(self.variance_sparsified, self.variance_original)


def relative_variance(
    original: UncertainGraph,
    sparsified: UncertainGraph,
    query: "Query",
    runs: int = 30,
    n_samples: int = 100,
    rng: "int | np.random.Generator | None" = None,
    workers: "int | None" = 1,
    batch_size: "int | None" = None,
    batched: bool = True,
) -> VarianceComparison:
    """Run the paper's variance protocol on both graphs.

    ``runs`` independent estimators of ``n_samples`` worlds each are
    executed per graph (the paper uses 100 runs; benchmarks scale this
    down), and the unbiased variances of the scalar estimates compared.
    ``workers > 1`` fans the Monte-Carlo chunks of every run over a
    process pool, ``batch_size`` bounds a chunk's working set, and
    ``batched=False`` restores the legacy per-world loop — none of
    which can change any estimate (the determinism contract).
    """
    rng = ensure_rng(rng)
    estimates_original = repeated_estimates(
        original, query, runs=runs, n_samples=n_samples, rng=rng,
        workers=workers, batch_size=batch_size, batched=batched,
    )
    estimates_sparsified = repeated_estimates(
        sparsified, query, runs=runs, n_samples=n_samples, rng=rng,
        workers=workers, batch_size=batch_size, batched=batched,
    )
    return VarianceComparison(
        variance_original=unbiased_variance(estimates_original),
        variance_sparsified=unbiased_variance(estimates_sparsified),
    )
