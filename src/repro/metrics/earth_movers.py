"""Earth mover's distance between query-outcome distributions (Eq. 17).

Section 6.3 quantifies the similarity of a sparsified graph to the
original with respect to a query ``Q`` by the earth mover's distance
between the empirical CDFs of ``Q``'s outcomes over MC samples::

    D_em(G, G', Q) = sum_i |F_G(x_i) - F_G'(x_i)| * (x_i - x_{i-1})

over the ordered union ``{x_0 .. x_M}`` of observed outcomes.  For
one-dimensional distributions this equals the Wasserstein-1 distance;
the tests cross-check against ``scipy.stats.wasserstein_distance``.

Vector-valued queries (pagerank on all vertices, SP on many pairs) are
handled per unit and averaged — one CDF pair per vertex / pair.
"""

from __future__ import annotations

import numpy as np


def earth_movers_distance(samples_a: np.ndarray, samples_b: np.ndarray) -> float:
    """Eq. (17) on two 1-D outcome samples (nan entries are dropped)."""
    a = np.asarray(samples_a, dtype=np.float64)
    b = np.asarray(samples_b, dtype=np.float64)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if len(a) == 0 or len(b) == 0:
        return float("nan")
    support = np.union1d(a, b)
    if len(support) == 1:
        return 0.0
    # Empirical CDFs on the merged support.
    cdf_a = np.searchsorted(np.sort(a), support, side="right") / len(a)
    cdf_b = np.searchsorted(np.sort(b), support, side="right") / len(b)
    gaps = np.diff(support)
    return float(np.sum(np.abs(cdf_a - cdf_b)[:-1] * gaps))


def mean_earth_movers_distance(
    outcomes_a: np.ndarray, outcomes_b: np.ndarray
) -> float:
    """Average per-unit EMD between two ``(samples, units)`` matrices.

    Units that are undefined (all-nan) in either matrix are skipped;
    returns nan when no unit is comparable.
    """
    a = np.asarray(outcomes_a, dtype=np.float64)
    b = np.asarray(outcomes_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(
            f"outcome matrices must share the unit dimension, "
            f"got {a.shape} and {b.shape}"
        )
    distances = []
    for unit in range(a.shape[1]):
        d = earth_movers_distance(a[:, unit], b[:, unit])
        if not np.isnan(d):
            distances.append(d)
    return float(np.mean(distances)) if distances else float("nan")
