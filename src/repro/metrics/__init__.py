"""Quality metrics used by the paper's evaluation (section 6).

- :func:`~repro.metrics.earth_movers.earth_movers_distance` — Eq. 17,
- :func:`~repro.metrics.structural.degree_discrepancy_mae` /
  :func:`~repro.metrics.structural.sampled_cut_discrepancy_mae` —
  structural preservation,
- :func:`~repro.metrics.variance.relative_variance` — MC variance
  protocol.
"""

from repro.metrics.earth_movers import earth_movers_distance, mean_earth_movers_distance
from repro.metrics.structural import (
    degree_discrepancy_mae,
    relative_entropy,
    sample_cut_sets,
    sampled_cut_discrepancy_mae,
)
from repro.metrics.variance import VarianceComparison, relative_variance

__all__ = [
    "VarianceComparison",
    "degree_discrepancy_mae",
    "earth_movers_distance",
    "mean_earth_movers_distance",
    "relative_entropy",
    "relative_variance",
    "sample_cut_sets",
    "sampled_cut_discrepancy_mae",
]
