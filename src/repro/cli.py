"""Command-line interface: sparsify edge-list files and inspect graphs.

Examples
--------
Sparsify a graph file to 30% of its edges with the paper's best variant::

    repro-sparsify sparsify graph.txt out.txt --alpha 0.3 --variant EMD^R-t

Sparsify a whole alpha ladder, reusing one backbone plan (a single
Kruskal pass serves every ratio; outputs are bit-identical to per-alpha
runs under the same seed)::

    repro-sparsify sparsify graph.txt out-{alpha}.txt \
        --alpha 0.1,0.2,0.4 --variant GDB^A-t --backbone-plan

Print structural statistics of a graph (entropy, degrees, density)::

    repro-sparsify info graph.txt

Compare a sparsified graph against its original::

    repro-sparsify compare graph.txt out.txt --cut-samples 30

Generate a synthetic uncertain graph / estimate a query by Monte-Carlo::

    repro-sparsify generate flickr graph.txt --n 500 --seed 7
    repro-sparsify estimate graph.txt --query reliability --samples 500

Convert between the text and binary dataset formats, then sweep an
``(alpha, h)`` grid out-of-core over 4 worker processes (results are
bit-identical for any worker count)::

    repro-sparsify convert graph.txt graph.rpbg
    repro-sparsify grid graph.rpbg --alphas 0.2,0.4 --h-values 0.05,0.2 \
        --workers 4 --seed 7

Replay a seeded drift stream through the incremental maintainer,
comparing against a cold rebuild after every batch::

    repro-sparsify drift graph.txt --alpha 0.3 --batches 10 \
        --edge-fraction 0.05 --compare-rebuild
"""

from __future__ import annotations

import argparse
import sys

from repro.core import available_variants, graph_entropy, sparsify
from repro.datasets import read_edge_list, write_edge_list
from repro.exceptions import EstimationError, ReproError
from repro.metrics import (
    degree_discrepancy_mae,
    relative_entropy,
    sampled_cut_discrepancy_mae,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sparsify",
        description="Uncertain graph sparsification (Parchas et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_format_flag(cmd) -> None:
        cmd.add_argument(
            "--format", choices=["auto", "text", "binary"], default="auto",
            dest="input_format",
            help="input format; 'auto' (default) sniffs the binary magic. "
            "Binary inputs are memory-mapped (out-of-core).",
        )

    def add_backend_flag(cmd, what: str) -> None:
        cmd.add_argument(
            "--backend", default="numpy",
            help=f"array backend for the {what}: 'numpy' (default, the "
            "bit-identical reference) or any name from "
            "repro.backend.available_backends() — e.g. 'torch', 'cupy' "
            "when installed",
        )

    sparsify_cmd = sub.add_parser("sparsify", help="sparsify an edge-list file")
    sparsify_cmd.add_argument("input", help="input edge list (u v p per line)")
    add_format_flag(sparsify_cmd)
    sparsify_cmd.add_argument(
        "output",
        help="output edge list path; with several alphas it is a template "
        "that must contain '{alpha}' (e.g. out-{alpha}.txt)",
    )
    sparsify_cmd.add_argument(
        "--alpha", required=True,
        help="sparsification ratio in (0, 1); a comma-separated list "
        "(e.g. 0.1,0.2,0.4) sparsifies once per ratio",
    )
    sparsify_cmd.add_argument(
        "--variant", default="EMD^R-t",
        help=f"one of {', '.join(available_variants())} (default: EMD^R-t)",
    )
    sparsify_cmd.add_argument("--seed", type=int, default=None, help="RNG seed")
    sparsify_cmd.add_argument(
        "--h", type=float, default=0.05, dest="entropy_h",
        help="entropy parameter h in [0, 1] (default 0.05)",
    )
    sparsify_cmd.add_argument(
        "--engine", choices=["vector", "loop"], default="vector",
        help="GDB/EMD sweep engine: the array-native engine (default) or "
        "the scalar reference loop",
    )
    sparsify_cmd.add_argument(
        "--backbone-plan", action="store_true",
        help="build one BackbonePlan and reuse it across all alphas "
        "(one Kruskal pass for the whole ladder; outputs are "
        "bit-identical to per-alpha construction under the same seed; "
        "NI memoises its forest-peel structure on the plan instead)",
    )
    sparsify_cmd.add_argument(
        "--lp-solver", choices=["highs", "pdp"], default="highs",
        help="probability solver for LP variants: exact scipy HiGHS "
        "(default) or the first-order primal-dual projection solver",
    )
    sparsify_cmd.add_argument(
        "--emd-mode", choices=["eager", "lazy"], default="eager",
        help="EMD E-phase heap discipline: eager indexed heap (default, "
        "bit-identity reference) or lazy deferred maintenance "
        "(converged-objective equivalent, faster)",
    )
    add_backend_flag(sparsify_cmd, "GDB sweep kernels (GDB variants only)")

    info_cmd = sub.add_parser("info", help="print graph statistics")
    info_cmd.add_argument("input", help="edge list path")

    compare_cmd = sub.add_parser(
        "compare", help="structural comparison of two graphs"
    )
    compare_cmd.add_argument("original", help="original edge list")
    compare_cmd.add_argument("sparsified", help="sparsified edge list")
    compare_cmd.add_argument(
        "--cut-samples", type=int, default=30,
        help="sampled cuts per cardinality (default 30)",
    )
    compare_cmd.add_argument("--seed", type=int, default=0, help="RNG seed")

    variants_cmd = sub.add_parser("variants", help="list variant strings")
    del variants_cmd

    generate_cmd = sub.add_parser(
        "generate", help="write a synthetic uncertain graph"
    )
    generate_cmd.add_argument(
        "family", choices=["flickr", "twitter", "grid", "er"],
        help="generator family (see repro.datasets)",
    )
    generate_cmd.add_argument("output", help="output edge-list path")
    generate_cmd.add_argument("--n", type=int, default=300, help="vertex count")
    generate_cmd.add_argument(
        "--avg-degree", type=int, default=None,
        help="average degree (family default when omitted)",
    )
    generate_cmd.add_argument("--seed", type=int, default=None, help="RNG seed")

    estimate_cmd = sub.add_parser(
        "estimate", help="Monte-Carlo estimate of a query on a graph file"
    )
    estimate_cmd.add_argument("input", help="edge-list path")
    add_format_flag(estimate_cmd)
    estimate_cmd.add_argument(
        "--query", choices=["reliability", "distance", "pagerank",
                            "clustering", "connectivity"],
        default="reliability",
    )
    estimate_cmd.add_argument(
        "--samples", type=int, default=300, help="number of sampled worlds"
    )
    estimate_cmd.add_argument(
        "--pairs", type=int, default=50,
        help="random vertex pairs for reliability/distance",
    )
    estimate_cmd.add_argument(
        "--weighted", action="store_true",
        help="with --query distance: most-probable-path distances on the "
        "-log p weight transform (batched delta-stepping kernel) instead "
        "of hop counts",
    )
    estimate_cmd.add_argument("--seed", type=int, default=0, help="RNG seed")
    estimate_cmd.add_argument(
        "--batch-size", type=int, default=None,
        help="worlds per batch chunk (default: auto-sized from memory)",
    )
    estimate_cmd.add_argument(
        "--no-batch", action="store_true",
        help="evaluate worlds one at a time (legacy path)",
    )
    estimate_cmd.add_argument(
        "--workers", type=int, default=1,
        help="processes for batch-chunk evaluation (default 1 = in-process; "
        "0 means one per CPU; results are identical for any value)",
    )
    add_backend_flag(estimate_cmd, "batched traversal kernels")

    convert_cmd = sub.add_parser(
        "convert", help="convert a dataset between text and binary formats"
    )
    convert_cmd.add_argument("input", help="input dataset (text or binary)")
    convert_cmd.add_argument("output", help="output dataset path")
    convert_cmd.add_argument(
        "--to", choices=["auto", "text", "binary"], default="auto",
        dest="target_format",
        help="output format; 'auto' (default) picks the opposite of the "
        "input's format",
    )
    convert_cmd.add_argument(
        "--allow-relabel", action="store_true",
        help="permit text graphs whose vertices are not the dense ids "
        "0..n-1: labels are mapped to dense ids in first-seen order "
        "(lossy — the original labels are not stored in the binary file)",
    )

    grid_cmd = sub.add_parser(
        "grid",
        help="sweep GDB over an (alpha, h) grid, optionally sharded over "
        "worker processes",
    )
    grid_cmd.add_argument("input", help="input dataset (text or binary)")
    add_format_flag(grid_cmd)
    grid_cmd.add_argument(
        "--alphas", required=True,
        help="comma-separated sparsification ratios, e.g. 0.2,0.4",
    )
    grid_cmd.add_argument(
        "--h-values", required=True,
        help="comma-separated entropy parameters in [0, 1], e.g. 0.05,0.2",
    )
    grid_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = serial; 0 means one per CPU; "
        "results are bit-identical for any value)",
    )
    grid_cmd.add_argument(
        "--seed", type=int, default=0,
        help="backbone RNG seed (default 0; sharded runs require a seed)",
    )
    grid_cmd.add_argument(
        "--engine", choices=["vector", "loop"], default="vector",
        help="GDB sweep engine (default vector)",
    )
    grid_cmd.add_argument(
        "--relative", action="store_true",
        help="minimise relative instead of absolute discrepancy",
    )
    grid_cmd.add_argument(
        "--backbone-method", choices=["bgi", "random", "local_degree"],
        default="bgi", help="backbone construction method (default bgi)",
    )
    grid_cmd.add_argument(
        "--output", default=None,
        help="write the objective rows as JSON to this path instead of "
        "pretty-printing to stdout",
    )
    add_backend_flag(grid_cmd, "GDB sweep kernels (serial grids only)")

    drift_cmd = sub.add_parser(
        "drift",
        help="replay a seeded drift stream through the incremental "
        "sparsifier (maintain vs rebuild)",
    )
    drift_cmd.add_argument("input", help="input edge list (text format)")
    drift_cmd.add_argument(
        "--alpha", type=float, required=True,
        help="sparsification ratio in (0, 1), fixed along the stream",
    )
    drift_cmd.add_argument(
        "--variant", default="GDB^A-t",
        help="GDB variant maintained along the stream (default GDB^A-t)",
    )
    drift_cmd.add_argument(
        "--batches", type=int, default=8,
        help="delta batches to replay (default 8)",
    )
    drift_cmd.add_argument(
        "--edge-fraction", type=float, default=0.05,
        help="fraction of live edges drifting per batch (default 0.05)",
    )
    drift_cmd.add_argument(
        "--insert-rate", type=float, default=0.0,
        help="fraction of live edges inserted per batch (default 0)",
    )
    drift_cmd.add_argument(
        "--delete-rate", type=float, default=0.0,
        help="fraction of live edges deleted per batch (default 0)",
    )
    drift_cmd.add_argument(
        "--seed", type=int, default=0,
        help="one seed drives both the drift stream and the backbone "
        "(default 0; the replay is a pure function of it)",
    )
    drift_cmd.add_argument(
        "--h", type=float, default=0.05, dest="entropy_h",
        help="GDB entropy parameter (default 0.05)",
    )
    drift_cmd.add_argument(
        "--engine", choices=["vector", "loop"], default="vector",
        help="GDB sweep engine (default vector)",
    )
    drift_cmd.add_argument(
        "--compare-rebuild", action="store_true",
        help="also cold-rebuild after every batch and report the "
        "speedup and objective gap of maintenance vs rebuild",
    )
    drift_cmd.add_argument(
        "--output", default=None,
        help="write the final maintained sparsifier to this edge-list path",
    )

    diagnose_cmd = sub.add_parser(
        "diagnose", help="sparsification diagnostics for a (G, G') pair"
    )
    diagnose_cmd.add_argument("original", help="original edge list")
    diagnose_cmd.add_argument("sparsified", help="sparsified edge list")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the sparsification job server (also: repro-serve)",
    )
    from repro.server.__main__ import configure_parser as _configure_serve

    _configure_serve(serve_cmd)
    return parser


def _parse_floats(raw: str, flag: str) -> list[float]:
    try:
        values = [float(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise ReproError(f"invalid {flag} value: {raw!r}") from None
    if not values:
        raise ReproError(f"invalid {flag} value: {raw!r}")
    return values


def _parse_alphas(raw: str) -> list[float]:
    return _parse_floats(raw, "--alpha")


def _resolve_backend_arg(name: str):
    """Resolve a ``--backend`` value, turning registry errors (unknown
    name, backend not installed on this machine) into CLI errors."""
    from repro.backend import resolve_backend

    try:
        return resolve_backend(name)
    except ValueError as error:
        raise ReproError(str(error)) from None


def _load_graph(path: str, input_format: str = "auto"):
    """Load a dataset as ``(graph, dataset_path_or_None)``.

    Binary inputs come back as a memory-mapped
    :class:`~repro.core.array_graph.EdgeArrayGraph` plus the dataset
    path (so sharded commands can hand workers the file to mmap); text
    inputs as a parsed :class:`UncertainGraph` and ``None``.
    """
    from repro.datasets.binary_io import is_binary_file, read_binary

    binary = (
        input_format == "binary"
        or (input_format == "auto" and is_binary_file(path))
    )
    if binary:
        return read_binary(path, mmap=True).graph(), path
    return read_edge_list(path), None


def _cmd_sparsify(args: argparse.Namespace) -> int:
    backend = _resolve_backend_arg(args.backend)
    if not backend.is_reference:
        from repro.core import parse_variant

        if parse_variant(args.variant).method != "gdb":
            raise ReproError(
                f"--backend {args.backend!r} only applies to GDB variants, "
                f"not {args.variant!r}"
            )
    graph, dataset_path = _load_graph(args.input, args.input_format)
    if dataset_path is not None:
        from repro.core import parse_variant

        if parse_variant(args.variant).method not in ("gdb", "emd", "lp"):
            raise ReproError(
                f"variant {args.variant!r} needs the dict-backed graph API; "
                "binary (out-of-core) inputs support the array-native "
                "GDB/EMD/LP variants"
            )
    alphas = _parse_alphas(args.alpha)
    if len(alphas) > 1 and "{alpha}" not in args.output:
        raise ReproError(
            "multiple alphas need an output template containing '{alpha}', "
            "e.g. out-{alpha}.txt"
        )
    plan = None
    if args.backbone_plan:
        from repro.core import BackbonePlan, parse_variant

        if not parse_variant(args.variant).accepts_plan:
            raise ReproError(
                f"--backbone-plan only applies to GDB/EMD/LP/NI variants, "
                f"not {args.variant!r}"
            )
        plan = BackbonePlan(graph)
    for alpha in alphas:
        sparsified = sparsify(
            graph, alpha, variant=args.variant, rng=args.seed,
            h=args.entropy_h, engine=args.engine, backbone_plan=plan,
            lp_solver=args.lp_solver, emd_mode=args.emd_mode,
            backend=backend,
        )
        output = args.output.replace("{alpha}", f"{alpha:g}")
        write_edge_list(sparsified, output)
        print(
            f"{args.input}: |V|={graph.number_of_vertices()} "
            f"|E|={graph.number_of_edges()} -> {output}: "
            f"|E'|={sparsified.number_of_edges()} "
            f"(H ratio {relative_entropy(sparsified, graph):.4f})"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.input)
    degrees = graph.expected_degrees()
    mean_degree = sum(degrees.values()) / max(len(degrees), 1)
    print(f"vertices:         {graph.number_of_vertices()}")
    print(f"edges:            {graph.number_of_edges()}")
    print(f"density:          {graph.density():.6f}")
    print(f"connected:        {graph.is_connected()}")
    print(f"expected |E|:     {graph.expected_number_of_edges():.3f}")
    print(f"mean E[degree]:   {mean_degree:.4f}")
    print(f"entropy (bits):   {graph_entropy(graph):.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    original = read_edge_list(args.original)
    sparsified = read_edge_list(args.sparsified)
    print(f"edge ratio:         "
          f"{sparsified.number_of_edges() / max(original.number_of_edges(), 1):.4f}")
    print(f"degree MAE (abs):   "
          f"{degree_discrepancy_mae(original, sparsified):.6g}")
    print(f"degree MAE (rel):   "
          f"{degree_discrepancy_mae(original, sparsified, relative=True):.6g}")
    print(f"cut MAE (sampled):  "
          f"{sampled_cut_discrepancy_mae(original, sparsified, samples_per_k=args.cut_samples, rng=args.seed):.6g}")
    print(f"relative entropy:   {relative_entropy(sparsified, original):.6g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro import datasets

    if args.family == "flickr":
        graph = datasets.flickr_like(
            n=args.n, avg_degree=args.avg_degree or 24, seed=args.seed
        )
    elif args.family == "twitter":
        graph = datasets.twitter_like(
            n=args.n, avg_degree=args.avg_degree or 8, seed=args.seed
        )
    elif args.family == "grid":
        side = max(int(args.n ** 0.5), 2)
        graph = datasets.grid_uncertain(side, side, rng=args.seed)
    else:  # er
        graph = datasets.erdos_renyi_uncertain(
            args.n, avg_degree=args.avg_degree or 12, rng=args.seed
        )
    write_edge_list(graph, args.output)
    print(f"wrote {graph.number_of_vertices()} vertices / "
          f"{graph.number_of_edges()} edges to {args.output}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.queries import (
        ClusteringCoefficientQuery,
        ConnectivityQuery,
        PageRankQuery,
        ReliabilityQuery,
        ShortestPathQuery,
        sample_vertex_pairs,
    )
    from repro.sampling import MonteCarloEstimator

    graph, dataset_path = _load_graph(args.input, args.input_format)
    n = graph.number_of_vertices()
    if args.weighted and args.query != "distance":
        raise EstimationError(
            "--weighted only applies to --query distance"
        )
    if args.query in ("reliability", "distance"):
        pairs = sample_vertex_pairs(graph, args.pairs, rng=args.seed)
        query = (
            ReliabilityQuery(pairs) if args.query == "reliability"
            else ShortestPathQuery(pairs, weighted=args.weighted)
        )
    elif args.query == "pagerank":
        query = PageRankQuery(n)
    elif args.query == "clustering":
        query = ClusteringCoefficientQuery(n)
    else:
        query = ConnectivityQuery()
    from repro.sampling.parallel import resolve_workers

    workers = resolve_workers(args.workers if args.workers != 0 else None)
    estimator = MonteCarloEstimator(
        graph,
        n_samples=args.samples,
        batch_size=args.batch_size,
        batched=not args.no_batch,
        workers=workers,
        dataset=dataset_path if workers > 1 else None,
        backend=_resolve_backend_arg(args.backend),
    )
    try:
        result = estimator.run(query, rng=args.seed)
    finally:
        estimator.close()
    if args.no_batch:
        evaluation = "per-world (legacy)"
    elif workers > 1:
        evaluation = f"batched ({workers} workers)"
    else:
        evaluation = "batched"
    label = f"{args.query} (weighted -log p)" if args.weighted else args.query
    print(f"query:            {label}")
    print(f"worlds sampled:   {args.samples}")
    print(f"evaluation:       {evaluation}")
    print(f"scalar estimate:  {result.scalar_estimate():.6f}")
    print(f"95% CI width:     {result.confidence_width():.6f}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.datasets.binary_io import (
        is_binary_file,
        read_binary,
        write_binary,
    )

    input_binary = is_binary_file(args.input)
    target = args.target_format
    if target == "auto":
        target = "text" if input_binary else "binary"
    if input_binary and target == "binary":
        raise ReproError(f"{args.input} is already a binary dataset")
    if not input_binary and target == "text":
        raise ReproError(f"{args.input} is already a text dataset")
    if target == "binary":
        graph = read_edge_list(args.input)
        try:
            dense = set(graph.vertices()) == set(range(graph.number_of_vertices()))
        except TypeError:
            dense = False
        header = write_binary(graph, args.output, allow_relabel=args.allow_relabel)
        note = "" if dense else " (vertices relabelled to dense ids)"
        print(
            f"{args.input} -> {args.output}: {header.n_vertices} vertices, "
            f"{header.n_edges} edges, digest {header.digest[:16]}…{note}"
        )
    else:
        dataset = read_binary(args.input, mmap=True, verify=True)
        write_edge_list(dataset.graph(), args.output)
        print(
            f"{args.input} -> {args.output}: "
            f"{dataset.header.n_vertices} vertices, "
            f"{dataset.header.n_edges} edges (digest verified)"
        )
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    import time

    from repro.core import IncrementalSparsifier, sparsify as _sparsify
    from repro.datasets import DriftWorkload

    graph = read_edge_list(args.input)
    workload = DriftWorkload(
        graph,
        edge_fraction=args.edge_fraction,
        insert_rate=args.insert_rate,
        delete_rate=args.delete_rate,
        seed=args.seed,
    )
    maintainer = IncrementalSparsifier(
        graph.copy(), args.alpha, variant=args.variant, rng=args.seed,
        h=args.entropy_h, engine=args.engine,
    )
    print(
        f"{args.input}: |V|={graph.number_of_vertices()} "
        f"|E|={graph.number_of_edges()}, maintaining {args.variant}@"
        f"{args.alpha:g} over {args.batches} batches "
        f"({args.edge_fraction:.0%} drift/batch, seed {args.seed})"
    )
    header = f"{'batch':>5} {'changed':>7} {'kind':>10} {'sweeps':>6} " \
             f"{'ms':>8} {'D1':>12}"
    if args.compare_rebuild:
        header += f" {'rebuild ms':>10} {'speedup':>8} {'D1 gap':>10}"
    print(header)
    for index in range(args.batches):
        batch = workload.next_batch(maintainer.graph)
        report = maintainer.apply(batch)
        kind = "structural" if report.structural else "updates"
        line = (
            f"{index:>5d} {report.batch_size:>7d} {kind:>10} "
            f"{report.sweeps:>6d} {report.elapsed * 1e3:>8.1f} "
            f"{report.d1:>12.6g}"
        )
        if args.compare_rebuild:
            start = time.perf_counter()
            cold = _sparsify(
                maintainer.graph, args.alpha, variant=args.variant,
                rng=args.seed, h=args.entropy_h, engine=args.engine,
            )
            rebuild_s = time.perf_counter() - start
            from repro.core import d1_objective

            gap = abs(report.d1 - d1_objective(
                maintainer.graph, cold,
                relative=maintainer.config.relative,
            ))
            speedup = rebuild_s / max(report.elapsed, 1e-12)
            line += (
                f" {rebuild_s * 1e3:>10.1f} {speedup:>8.2f} {gap:>10.3g}"
            )
        print(line)
    print(
        f"total sweeps: {maintainer.sweeps}, final D1: "
        f"{maintainer.d1():.6g}"
    )
    if args.output is not None:
        write_edge_list(maintainer.sparsified(), args.output)
        print(f"wrote maintained sparsifier to {args.output}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    import json

    from repro.core.grid import gdb_grid, objective_rows
    from repro.sampling.parallel import resolve_workers

    graph, dataset_path = _load_graph(args.input, args.input_format)
    alphas = _parse_floats(args.alphas, "--alphas")
    h_values = _parse_floats(args.h_values, "--h-values")
    workers = resolve_workers(args.workers if args.workers != 0 else None)
    backend = _resolve_backend_arg(args.backend)
    if workers > 1 and not backend.is_reference:
        raise ReproError(
            f"--backend {args.backend!r} requires --workers 1: device "
            "grids cannot be sharded over host processes"
        )
    results = gdb_grid(
        graph, alphas, h_values,
        relative=args.relative,
        backbone_method=args.backbone_method,
        rng=args.seed,
        engine=args.engine,
        build_graphs=False,
        workers=workers,
        dataset=dataset_path if workers > 1 else None,
        backend=backend,
    )
    rows = objective_rows(results)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")
        print(f"wrote {len(rows)} grid cells to {args.output}")
        return 0
    print(f"{'alpha':>8} {'h':>8} {'objective':>14} {'sweeps':>7}")
    for row in rows:
        print(
            f"{row['alpha']:>8g} {row['h']:>8g} "
            f"{row['objective']:>14.6g} {row['sweeps']:>7d}"
        )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "sparsify":
            return _cmd_sparsify(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "variants":
            for variant in available_variants():
                print(variant)
            return 0
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "estimate":
            return _cmd_estimate(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "grid":
            return _cmd_grid(args)
        if args.command == "drift":
            return _cmd_drift(args)
        if args.command == "serve":
            from repro.server.__main__ import run_from_args

            return run_from_args(args)
        if args.command == "diagnose":
            from repro.core.diagnostics import analyze_sparsification

            report = analyze_sparsification(
                read_edge_list(args.original), read_edge_list(args.sparsified)
            )
            print(report.format())
            return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
