"""Fig. 6 — degree/cut preservation vs NI and SP on both proxies."""

from repro.experiments import run_fig06
from repro.experiments.common import REPRESENTATIVE_EMD, REPRESENTATIVE_GDB


def test_fig06_structural_comparison(benchmark, bench_scale, emit):
    results = benchmark.pedantic(
        run_fig06, args=(bench_scale,), rounds=1, iterations=1
    )
    for dataset, (degree, cuts) in results.items():
        emit(f"fig06_{dataset}", degree, cuts)

    for dataset, (degree, cuts) in results.items():
        for alpha_col in degree.headers[2:]:  # 16% and above
            proposed_degree = min(
                degree.cell(REPRESENTATIVE_GDB, alpha_col),
                degree.cell(REPRESENTATIVE_EMD, alpha_col),
            )
            # Proposed methods beat both benchmarks on degrees (paper:
            # usually by orders of magnitude).
            assert proposed_degree < degree.cell("NI", alpha_col)
            assert proposed_degree < degree.cell("SP", alpha_col)
            proposed_cuts = min(
                cuts.cell(REPRESENTATIVE_GDB, alpha_col),
                cuts.cell(REPRESENTATIVE_EMD, alpha_col),
            )
            assert proposed_cuts < cuts.cell("SP", alpha_col)
