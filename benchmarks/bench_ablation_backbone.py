"""Ablation: backbone construction methods under the same GDB refinement.

DESIGN.md calls out the backbone choice (Algorithm 1's spanning forests
vs alternatives the paper mentions: random MC sampling, Local Degree
[24], t-bundle [21]).  This benchmark seeds GDB with each backbone at
equal budget and compares degree MAE, cut MAE and connectivity.
"""

from repro.core import GDBConfig, gdb
from repro.core.backbone import BackbonePlan, build_backbone
from repro.experiments.common import ResultTable, make_flickr_proxy
from repro.metrics import (
    degree_discrepancy_mae,
    sample_cut_sets,
    sampled_cut_discrepancy_mae,
)

BACKBONES = ("bgi", "random", "local_degree", "t_bundle")


def run_backbone_ablation(scale, alpha: float = 0.3, seed: int = 51) -> ResultTable:
    graph = make_flickr_proxy(scale, seed=seed)
    cut_sets = sample_cut_sets(
        graph.number_of_vertices(), samples_per_k=scale.cut_samples_per_k, rng=seed
    )
    table = ResultTable(
        title=f"Ablation — backbone methods + GDB (alpha={alpha:.0%}, {graph.name})",
        headers=["backbone", "degree_MAE", "cut_MAE", "largest_component"],
    )
    plan = BackbonePlan(graph)
    for method in BACKBONES:
        ids = build_backbone(graph, alpha, method=method, rng=seed, plan=plan)
        sparsified = gdb(graph, backbone_ids=ids, config=GDBConfig())
        components = sparsified.connected_components()
        table.add_row(
            method,
            degree_discrepancy_mae(graph, sparsified),
            sampled_cut_discrepancy_mae(graph, sparsified, cut_sets=cut_sets),
            max(len(c) for c in components) / graph.number_of_vertices(),
        )
    return table


def test_backbone_ablation(benchmark, bench_scale, emit):
    table = benchmark.pedantic(
        run_backbone_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("ablation_backbone", table)
    # BGI guarantees connectivity.
    assert table.cell("bgi", "largest_component") == 1.0
    # Spanning-structure backbones (BGI, t-bundle) let GDB reach
    # near-zero degree error.
    assert table.cell("bgi", "degree_MAE") < 1e-2
    assert table.cell("t_bundle", "degree_MAE") < 1e-2
    # Local Degree hoards edges at hubs and starves the rest — the
    # paper's section 2.3 argument for why it cannot be adapted to
    # uncertain graphs; it must be the worst seed by a wide margin.
    assert table.cell("local_degree", "degree_MAE") == max(
        table.column("degree_MAE")
    )
