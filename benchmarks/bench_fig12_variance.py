"""Fig. 12 — relative variance of the MC estimator."""

import numpy as np

from repro.experiments import run_fig12
from repro.experiments.common import REPRESENTATIVE_EMD, REPRESENTATIVE_GDB


def test_fig12_relative_variance(benchmark, bench_scale, emit):
    # Two alphas keep the repeated-runs protocol affordable at bench scale.
    results = benchmark.pedantic(
        run_fig12,
        args=(bench_scale,),
        kwargs={"alphas": (0.08, 0.32)},
        rounds=1,
        iterations=1,
    )
    for dataset, tables in results.items():
        emit(f"fig12_{dataset}", *tables.values())

    # Paper shape: GDB/EMD cut the variance of the original estimator
    # (ratios well below 1) on the clear majority of query/alpha cells.
    small_cells = 0
    total_cells = 0
    for tables in results.values():
        for table in tables.values():
            for column in table.headers[1:]:
                for method in (REPRESENTATIVE_GDB, REPRESENTATIVE_EMD):
                    value = table.cell(method, column)
                    total_cells += 1
                    if np.isfinite(value) and value < 1.0:
                        small_cells += 1
    assert small_cells >= 0.7 * total_cells
