"""Streaming maintenance benchmark: maintain-vs-rebuild under drift.

Drives :class:`repro.core.maintain.IncrementalSparsifier` along a
NU-MILA-style probability-drift stream (``repro.datasets.drift``) and
races it against a cold rebuild-from-scratch on every batch.  Layered
like the other benches — *quality gates are unconditional, speed floors
are environment-tunable*:

1. **Quality (always on)** — after every batch the maintained sparsifier
   must match the cold rebuild exactly where exactness is promised and
   within tolerance where convergence is:

   - selected edge set bit-identical (same seed, repaired plan);
   - peel ranks of the commonly-computed forests bit-identical to a
     fresh :class:`BackbonePlan` built on the drifted graph;
   - converged ``D_1`` no worse than the cold rebuild's beyond the
     coordinate-descent tolerance (one-sided: the warm path often lands
     *below* a sweep-capped cold run, which is a win, not a diff);
   - expected-degree query error along the stream no worse than cold.

2. **Latency** — per-batch speedup ``cold / maintain``; the median at
   the smallest drift fraction must clear
   ``REPRO_BENCH_STREAMING_MIN_SPEEDUP`` (default 5x — the acceptance
   floor at <=5% changed edges per batch).  The win is algorithmic
   (fewer, cheaper sweeps from a warm start), not parallel, so it holds
   on a single core; the floor is tunable for noisy shared runners.

A structural-churn segment (inserts + deletes) runs the same quality
gates but is excluded from the speed floor: edge-set churn legitimately
forces re-peeling and re-coloring work that probability drift does not.

Emits ``benchmarks/results/BENCH_streaming.json`` for the CI
``streaming`` job.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.core.backbone import BackbonePlan
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import gdb_refine
from repro.core.maintain import IncrementalSparsifier
from repro.core.sweep import build_sweep_plan
from repro.datasets import flickr_like
from repro.datasets.drift import DriftWorkload
from repro.experiments.common import ResultTable

#: Median maintain-vs-rebuild speedup required at the smallest drift
#: fraction.  The acceptance floor is 5x at <=5% changed edges; CI's
#: streaming job relaxes it for shared runners — the quality gates
#: (selection identity, rank identity, one-sided D1) always apply.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STREAMING_MIN_SPEEDUP", "5.0"))

#: One-sided D1 slack: warm must not exceed cold by more than this,
#: relative to max(1, cold).  Matches the acceptance criterion's 1e-6.
D1_TOL = 1e-6

#: Query-error slack.  ``D_1`` is an L2 quantity; the mean-absolute
#: expected-degree error is L1, so two states whose objectives agree
#: within ``D1_TOL`` can differ per-vertex by up to ~sqrt(D1_TOL).
QUERY_TOL = D1_TOL ** 0.5

N = 3000
AVG_DEGREE = 16
GRAPH_SEED = 5
ALPHA = 0.4
SEED = 11
TAU = 1e-8
MAX_SWEEPS = 3000  # high cap: both arms must actually reach the tau stop
SMOOTHING = 20.0
DRIFT_SEED = 7
BATCHES = 5
FRACTIONS = (0.002, 0.01, 0.05)  # all <= 5% changed edges per batch


def _cold_rebuild(graph, config):
    """Rebuild the sparsifier from scratch, exactly as ``sparsify`` would."""
    plan = BackbonePlan(graph)
    ids = plan.backbone(ALPHA, method="bgi", rng=SEED, top_up="stable")
    state = SparsificationState(graph)
    state.select_edges(ids)
    sweep_plan = build_sweep_plan(state)
    sweeps = gdb_refine(state, config, engine="vector", plan=sweep_plan)
    return plan, state, sweeps


def _ranks_identical(maintained: BackbonePlan, fresh: BackbonePlan) -> bool:
    """Commonly-computed peel ranks must be bit-identical."""
    k = min(maintained.forests_computed, fresh.forests_computed)
    if k < 1:
        return False
    for i in range(k):
        if not np.array_equal(maintained.forest(i), fresh.forest(i)):
            return False
    mr, fr = maintained.peel_rank, fresh.peel_rank
    return np.array_equal(np.where(mr <= k, mr, 0), np.where(fr <= k, fr, 0))


def _query_error(state: SparsificationState) -> float:
    """Mean absolute expected-degree discrepancy — the stream's query proxy."""
    return float(np.abs(state.delta).mean())


def _run_segment(graph_factory, workload_kwargs, batches=BATCHES):
    """Drift one maintained sparsifier and race a cold rebuild per batch."""
    graph = graph_factory()
    maintainer = IncrementalSparsifier(
        graph, ALPHA, variant="GDB^A-t", rng=SEED, tau=TAU,
        max_sweeps=MAX_SWEEPS,
    )
    workload = DriftWorkload(maintainer.graph, seed=DRIFT_SEED,
                             **workload_kwargs)
    records = []
    for index in range(batches):
        batch = workload.next_batch(maintainer.graph)
        report = maintainer.apply(batch)

        start = time.perf_counter()
        cold_plan, cold_state, cold_sweeps = _cold_rebuild(
            maintainer.graph, maintainer.config
        )
        cold_s = time.perf_counter() - start

        warm_d1 = maintainer.d1()
        cold_d1 = cold_state.d1(relative=maintainer.config.relative)
        records.append({
            "batch": index,
            "batch_size": report.batch_size,
            "structural": report.structural,
            "removed": report.removed,
            "added": report.added,
            "warm_ms": report.elapsed * 1e3,
            "cold_ms": cold_s * 1e3,
            "speedup": cold_s / max(report.elapsed, 1e-9),
            "warm_sweeps": report.sweeps,
            "cold_sweeps": cold_sweeps,
            "warm_d1": warm_d1,
            "cold_d1": cold_d1,
            "d1_gap": warm_d1 - cold_d1,
            "selection_identical": bool(
                np.array_equal(maintainer.state.selected, cold_state.selected)
            ),
            "ranks_identical": _ranks_identical(maintainer.plan, cold_plan),
            "warm_query_error": _query_error(maintainer.state),
            "cold_query_error": _query_error(cold_state),
        })
    return records


def _assert_quality(records, label):
    """The unconditional gates: exactness + one-sided convergence."""
    for r in records:
        assert r["selection_identical"], (
            f"{label} batch {r['batch']}: maintained selection diverged "
            f"from the cold rebuild's"
        )
        assert r["ranks_identical"], (
            f"{label} batch {r['batch']}: repaired peel ranks diverged "
            f"from a fresh plan's"
        )
        slack = D1_TOL * max(1.0, r["cold_d1"])
        assert r["warm_d1"] <= r["cold_d1"] + slack, (
            f"{label} batch {r['batch']}: warm D1 {r['warm_d1']:.3e} "
            f"exceeds cold {r['cold_d1']:.3e} beyond tolerance"
        )
        assert r["warm_query_error"] <= r["cold_query_error"] + QUERY_TOL, (
            f"{label} batch {r['batch']}: warm query error "
            f"{r['warm_query_error']:.3e} exceeds cold "
            f"{r['cold_query_error']:.3e}"
        )


def test_bench_streaming(emit, emit_json):
    graph_factory = lambda: flickr_like(
        n=N, avg_degree=AVG_DEGREE, seed=GRAPH_SEED
    )

    segments = {}
    for frac in FRACTIONS:
        segments[frac] = _run_segment(
            graph_factory, {"edge_fraction": frac, "smoothing": SMOOTHING},
        )
        _assert_quality(segments[frac], f"drift frac={frac}")

    structural = _run_segment(
        graph_factory,
        {"edge_fraction": 0.005, "smoothing": SMOOTHING,
         "insert_rate": 0.2, "delete_rate": 0.2},
        batches=3,
    )
    _assert_quality(structural, "structural churn")
    assert any(r["structural"] for r in structural), (
        "structural segment produced no inserts/deletes — workload knobs "
        "are not reaching the batch builder"
    )

    table = ResultTable(
        title=f"Streaming maintenance vs cold rebuild, flickr-like n={N} "
        f"alpha={ALPHA} tau={TAU:g} ({BATCHES} batches/segment)",
        headers=["segment", "median warm ms", "median cold ms",
                 "median speedup", "max d1 gap"],
    )
    medians = {}
    for frac, records in segments.items():
        med = statistics.median(r["speedup"] for r in records)
        medians[frac] = med
        table.add_row(
            f"drift {frac * 100:g}%",
            statistics.median(r["warm_ms"] for r in records),
            statistics.median(r["cold_ms"] for r in records),
            med,
            max(r["d1_gap"] for r in records),
        )
    table.add_row(
        "structural",
        statistics.median(r["warm_ms"] for r in structural),
        statistics.median(r["cold_ms"] for r in structural),
        statistics.median(r["speedup"] for r in structural),
        max(r["d1_gap"] for r in structural),
    )
    emit("bench_streaming", table)

    gate_frac = min(FRACTIONS)
    emit_json("streaming", {
        "config": {
            "n": N, "avg_degree": AVG_DEGREE, "graph_seed": GRAPH_SEED,
            "alpha": ALPHA, "seed": SEED, "tau": TAU,
            "smoothing": SMOOTHING, "drift_seed": DRIFT_SEED,
            "batches": BATCHES, "fractions": list(FRACTIONS),
            "variant": "GDB^A-t", "top_up": "stable",
        },
        "segments": {str(f): records for f, records in segments.items()},
        "structural": structural,
        "median_speedups": {str(f): m for f, m in medians.items()},
        "gate": {
            "fraction": gate_frac,
            "min_speedup": MIN_SPEEDUP,
            "median_speedup": medians[gate_frac],
            "d1_tolerance": D1_TOL,
        },
    })

    assert medians[gate_frac] >= MIN_SPEEDUP, (
        f"median maintain-vs-rebuild speedup at {gate_frac * 100:g}% drift "
        f"is {medians[gate_frac]:.2f}x, below the {MIN_SPEEDUP}x floor"
    )
