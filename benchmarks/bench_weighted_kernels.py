"""Smoke benchmark: the ensemble traversal kernels.

Two workloads on a ~5k-edge Flickr-style topology:

- **weighted**: batched delta-stepping (``-log p`` most-probable-path
  distances, all worlds at once) against the per-world binary-heap
  Dijkstra loop, on a *dense-probability* ensemble (p in [0.4, 0.95] —
  the regime the paper's sparsifiers produce by pushing probabilities
  towards 1, and where whole-graph traversals dominate per-world cost).
  The distance matrices must agree within float tolerance (always
  gated) and the batched kernel must win by ``MIN_SPEEDUP`` — the
  timing gate is skipped on single-core machines where clocks are too
  noisy.  On very sparse ensembles (mean p well under 0.1) each
  world's reachable component is tiny and the per-world Dijkstra is
  competitive; the equality gate still runs there via the unit tests.
- **packed BFS**: bit-packed uint64 frontiers against the boolean
  kernel.  Distances must be *bit-identical* (always gated) and the
  packed frontier working set must be ~8x smaller — a deterministic
  arithmetic gate, not a timing; wall-clocks of both kernels are
  reported for the archive.

Results land under ``benchmarks/results/`` like the other benches.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import UncertainGraph
from repro.datasets import flickr_like
from repro.experiments.common import ResultTable
from repro.sampling import WorldSampler

#: Acceptance floor for batched delta-stepping vs the Dijkstra loop on
#: the dense-probability ensemble (measured ~3x single-core; CI noise
#: overrides via REPRO_BENCH_WEIGHTED_MIN_SPEEDUP — tolerance-equality
#: always gates).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_WEIGHTED_MIN_SPEEDUP", "1.5"))

#: Worlds per ensemble: a multiple of 64 so the packed-frontier memory
#: ratio is exactly 8 bool bytes per uint64 word.
N_WORLDS = int(os.environ.get("REPRO_BENCH_WEIGHTED_WORLDS", "256"))

N_SOURCES = 4


@pytest.fixture(scope="module")
def dense_sampler():
    """The bench topology with sparsified-regime probabilities."""
    base = flickr_like(n=500, avg_degree=20, seed=17)
    assert 4500 <= base.number_of_edges() <= 5500
    rng = np.random.default_rng(0)
    probabilities = rng.uniform(0.4, 0.95, base.number_of_edges())
    edges = [
        (u, v, float(p))
        for (u, v), p in zip(base.edge_list(), probabilities)
    ]
    return WorldSampler(UncertainGraph(edges, name="flickr-dense-p"))


@pytest.fixture(scope="module")
def sparse_sampler():
    """The bench topology with its native (low) probabilities."""
    return WorldSampler(flickr_like(n=500, avg_degree=20, seed=17))


def test_bench_weighted_delta_stepping(dense_sampler, emit):
    batch = dense_sampler.sample_batch(N_WORLDS, rng=3)
    sources = list(range(N_SOURCES))

    start = time.perf_counter()
    batched = [batch.weighted_distances(s) for s in sources]
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    worlds = list(batch.iter_worlds())
    reference = [
        np.stack([world.weighted_distances(s) for world in worlds])
        for s in sources
    ]
    loop_s = time.perf_counter() - start

    # Correctness always gates: same distances (inf pattern included)
    # up to float addition reordering.
    for got, want in zip(batched, reference):
        assert np.allclose(got, want, rtol=1e-9, atol=1e-12)
        assert np.array_equal(np.isinf(got), np.isinf(want))

    speedup = loop_s / batched_s
    table = ResultTable(
        title=(
            f"Batched delta-stepping vs per-world Dijkstra — {N_WORLDS} "
            f"worlds, {dense_sampler.m} edges, {N_SOURCES} sources, "
            f"p in [0.4, 0.95]"
        ),
        headers=["kernel", "seconds", "speedup"],
    )
    table.add_row("dijkstra-loop", loop_s, 1.0)
    table.add_row("delta-stepping", batched_s, speedup)
    emit("bench_weighted_delta_stepping", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"batched weighted kernel only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_bench_packed_bfs(sparse_sampler, emit):
    batch = sparse_sampler.sample_batch(N_WORLDS, rng=3)
    sources = list(range(N_SOURCES))

    start = time.perf_counter()
    boolean = [batch.bfs_distances(s, kernel="boolean") for s in sources]
    boolean_s = time.perf_counter() - start

    start = time.perf_counter()
    packed = [batch.bfs_distances(s, kernel="packed") for s in sources]
    packed_s = time.perf_counter() - start

    # Bit-identity always gates.
    for got, want in zip(packed, boolean):
        assert np.array_equal(got, want)

    # The memory gate is arithmetic, not a timing: per (vertices x
    # worlds) state matrix, the packed layout spends 8 bytes per 64
    # worlds against 1 byte per world.
    n = sparse_sampler.n
    boolean_frontier_bytes = N_WORLDS * n  # bool
    packed_frontier_bytes = ((N_WORLDS + 63) // 64) * 8 * n  # uint64 words
    ratio = boolean_frontier_bytes / packed_frontier_bytes
    assert ratio >= 7.5, f"packed frontier only {ratio:.1f}x smaller"

    table = ResultTable(
        title=(
            f"Packed vs boolean BFS frontiers — {N_WORLDS} worlds, "
            f"{sparse_sampler.m} edges, {N_SOURCES} sources"
        ),
        headers=["kernel", "seconds", "frontier_bytes"],
        notes=f"frontier memory ratio {ratio:.1f}x (gated >= 7.5x)",
    )
    table.add_row("boolean", boolean_s, boolean_frontier_bytes)
    table.add_row("packed", packed_s, packed_frontier_bytes)
    emit("bench_packed_bfs", table)
