"""Micro-benchmarks of the core operations (true pytest-benchmark timing).

Not tied to a paper figure: these time the primitives the paper's cost
arguments rest on — O(|E|) world sampling, GDB sweeps, EMD E-phases, NI
forest peeling — so regressions in the hot paths are visible.
"""

import pytest

from repro.baselines import ni_sparsify
from repro.core import GDBConfig, gdb, sparsify
from repro.core.backbone import bgi_backbone
from repro.datasets import flickr_like
from repro.queries import PageRankQuery
from repro.sampling import MonteCarloEstimator, WorldSampler


@pytest.fixture(scope="module")
def graph():
    return flickr_like(n=150, avg_degree=30, seed=21)


def test_bench_world_sampling(benchmark, graph):
    sampler = WorldSampler(graph)
    import numpy as np

    rng = np.random.default_rng(0)
    benchmark(lambda: sampler.sample(rng))


def test_bench_bgi_backbone(benchmark, graph):
    benchmark(lambda: bgi_backbone(graph, 0.3, rng=0))


def test_bench_gdb_sparsify(benchmark, graph):
    ids = bgi_backbone(graph, 0.3, rng=0)
    benchmark(lambda: gdb(graph, backbone_ids=list(ids), config=GDBConfig(max_sweeps=30)))


def test_bench_emd_sparsify(benchmark, graph):
    benchmark.pedantic(
        lambda: sparsify(graph, 0.3, variant="EMD^A-t", rng=0),
        rounds=1, iterations=1,
    )


def test_bench_ni_sparsify(benchmark, graph):
    benchmark.pedantic(lambda: ni_sparsify(graph, 0.3, rng=0), rounds=1, iterations=1)


def test_bench_pagerank_mc(benchmark, graph):
    estimator = MonteCarloEstimator(graph, n_samples=20)
    query = PageRankQuery(graph.number_of_vertices())
    benchmark.pedantic(lambda: estimator.run(query, rng=0), rounds=1, iterations=1)
