"""Smoke benchmark: the device-portable ``xp`` backend seam.

Runs the portable xp kernel formulations against the specialised host
kernels on a ~5k-edge Flickr-style ensemble and a GDB sweep workload,
and archives machine-readable results as
``benchmarks/results/BENCH_backend.json``.

Gates, in order of strictness:

- **Bit-identity (always):** ``backend="numpy"`` — the reference — must
  return byte-identical BFS/weighted distance matrices to the default
  path, and the portable xp formulations themselves (run through an
  array-API adapter over the NumPy namespace) must match BFS *exactly*
  and weighted distances within ``1e-9``.
- **Sweep tolerance (always):** the DeviceSweep GDB path must converge
  to the host engine's objective within ``1e-6``.
- **Device speedup (only with a device backend present):** when
  ``torch:cuda`` or ``cupy`` resolves, the device BFS must beat the
  host reference by ``REPRO_BENCH_BACKEND_MIN_SPEEDUP`` (default 1.0 —
  i.e. "not slower"; raise it on real hardware).  Skipped on CPU-only
  machines; the equivalence gates above still ran.

Timings for every locally-available backend are archived either way, so
the JSON doubles as a portability report for CPU-only CI.
"""

from __future__ import annotations

import os
import time

import pytest

import numpy as np

from repro.backend import ArrayAPIBackend, available_backends, resolve_backend
from repro.core.backbone import build_backbone
from repro.core.discrepancy import SparsificationState
from repro.core.gdb import GDBConfig, gdb_refine
from repro.datasets import flickr_like
from repro.sampling import WorldSampler

#: Device-over-host floor, consulted only when a CUDA/CuPy backend is
#: actually resolvable on this machine.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_BACKEND_MIN_SPEEDUP", "1.0"))

N_WORLDS = int(os.environ.get("REPRO_BENCH_BACKEND_WORLDS", "128"))
N_SOURCES = 4

DEVICE_BACKENDS = ("torch:cuda", "cupy")


@pytest.fixture(scope="module")
def sampler():
    return WorldSampler(flickr_like(n=400, avg_degree=20, seed=17))


def _time_distances(batch, sources) -> float:
    start = time.perf_counter()
    for s in sources:
        batch.bfs_distances(s)
        batch.weighted_distances(s)
    if not batch.backend.is_reference:
        batch.backend.synchronize()
    return time.perf_counter() - start


def test_bench_backend(sampler, emit_json):
    sources = list(range(N_SOURCES))
    ref_batch = sampler.sample_batch(N_WORLDS, rng=3)
    ref_bfs = [ref_batch.bfs_distances(s) for s in sources]
    ref_weighted = [ref_batch.weighted_distances(s) for s in sources]

    # Gate 1a: the named reference backend is arithmetically a no-op.
    named = sampler.sample_batch(N_WORLDS, rng=3, backend="numpy")
    for s in sources:
        np.testing.assert_array_equal(named.bfs_distances(s), ref_bfs[s])
        np.testing.assert_array_equal(named.weighted_distances(s), ref_weighted[s])

    # Gate 1b: the portable xp formulations on raw NumPy ops.
    numpy_api = ArrayAPIBackend(np, name="numpy_api")
    portable = sampler.sample_batch(N_WORLDS, rng=3, backend=numpy_api)
    for s in sources:
        np.testing.assert_array_equal(portable.bfs_distances(s), ref_bfs[s])
        np.testing.assert_allclose(
            portable.weighted_distances(s), ref_weighted[s],
            rtol=0.0, atol=1e-9,
        )

    # Gate 2: DeviceSweep converges to the host objective.
    sweep_graph = flickr_like(n=60, avg_degree=12, seed=5)
    backbone = build_backbone(sweep_graph, 0.4, method="bgi", rng=5)
    config = GDBConfig(max_sweeps=2000)
    host_state = SparsificationState(sweep_graph)
    host_state.select_edges(backbone)
    host_sweeps = gdb_refine(host_state, config)
    dev_state = SparsificationState(sweep_graph)
    dev_state.select_edges(backbone)
    dev_sweeps = gdb_refine(dev_state, config, backend=numpy_api)
    sweep_gap = abs(host_state.d1() - dev_state.d1())
    assert sweep_gap <= 1e-6

    # Timings for every backend resolvable here (incl. "instrumented",
    # whose wrapping overhead is itself worth tracking).
    timings: dict[str, float] = {}
    reference_s = _time_distances(ref_batch, sources)
    timings["numpy"] = reference_s
    timings["numpy_api"] = _time_distances(portable, sources)
    for name in available_backends():
        if name == "numpy":
            continue
        batch = sampler.sample_batch(N_WORLDS, rng=3, backend=name)
        timings[name] = _time_distances(batch, sources)

    devices = [n for n in DEVICE_BACKENDS if n in available_backends()]
    speedups = {
        name: reference_s / max(timings[name], 1e-12) for name in devices
    }

    payload = {
        "workload": {
            "n_vertices": 400,
            "n_edges": sampler.m,
            "worlds": N_WORLDS,
            "sources": N_SOURCES,
        },
        "available_backends": list(available_backends()),
        "timings_s": {k: round(v, 6) for k, v in timings.items()},
        "device_speedups": {k: round(v, 4) for k, v in speedups.items()},
        "min_speedup_gate": MIN_SPEEDUP,
        "gates": {
            "numpy_bit_identical": True,
            "portable_bfs_exact": True,
            "portable_weighted_atol": 1e-9,
            "sweep_objective_gap": sweep_gap,
            "sweep_counts": {"host": host_sweeps, "device": dev_sweeps},
        },
    }
    emit_json("backend", payload)

    if not devices:
        pytest.skip(
            "no device backend (torch:cuda / cupy) on this machine; "
            "equivalence gates ran, speedup gate skipped"
        )
    for name in devices:
        assert speedups[name] >= MIN_SPEEDUP, (
            f"{name} speedup {speedups[name]:.2f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )
