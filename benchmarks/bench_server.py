"""Server smoke benchmark: cold vs hot artifact-cache latency.

Two layers, matching the other benches' "equality always gates, speed
floors are environment-tunable" idiom:

1. **In-process** — drive :class:`SparsifierService` directly: a cold
   ``sparsify`` request computes, the identical repeat must be a cache
   hit with a byte-identical body and *zero* extra queue submissions.
   The hot/cold speedup is reported and gated via
   ``REPRO_BENCH_SERVER_MIN_SPEEDUP`` (default 5x — a hot hit is a dict
   lookup; cold runs a full GDB sweep).

2. **Subprocess** — boot ``python -m repro.server --port 0`` exactly as
   an operator would, parse the advertised port from stdout, and drive
   ``sparsify`` twice + ``estimate`` + ``metrics`` over real HTTP.  The
   repeat must arrive with ``X-Repro-Cache: hit`` and a bit-identical
   artifact.  This is the CI ``server`` job's gate.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.datasets import flickr_like, write_edge_list
from repro.experiments.common import ResultTable
from repro.server import ServerConfig, SparsifierService

#: A hot request is an LRU lookup; anything under this floor means the
#: cache is recomputing.  Tunable for noisy shared runners — the
#: byte-identity and zero-recompute assertions always gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVER_MIN_SPEEDUP", "5.0"))

REPEATS = 5

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench_server") / "flickr_like.txt"
    write_edge_list(flickr_like(n=400, avg_degree=12, seed=11), path)
    return str(path)


def test_bench_cache_hot_vs_cold(dataset, emit):
    params = {"dataset": dataset, "alpha": 0.3, "variant": "EMD^R-t",
              "seed": 0}
    with SparsifierService(ServerConfig(workers=2)) as service:
        start = time.perf_counter()
        cold_body, cold_hit = service.handle("sparsify", params)
        cold_s = time.perf_counter() - start

        hot_s = float("inf")
        for _ in range(REPEATS):  # best-of: hit latency, not scheduler noise
            start = time.perf_counter()
            hot_body, hot_hit = service.handle("sparsify", params)
            hot_s = min(hot_s, time.perf_counter() - start)

        # Correctness gates (unconditional): byte identity and zero
        # recomputation on the hot path.
        assert not cold_hit and hot_hit
        assert hot_body == cold_body, "cache hit changed the artifact bytes"
        assert service.queue.stats()["submitted"] == 1, (
            "repeat request re-entered the job queue"
        )

        speedup = cold_s / max(hot_s, 1e-9)
        table = ResultTable(
            title=f"Artifact cache, EMD^R-t alpha=0.3 -> "
            f"{json.loads(cold_body)['edges']} kept edges, flickr-like n=400",
            headers=["path", "seconds", "speedup"],
        )
        table.add_row("cold (computed)", cold_s, 1.0)
        table.add_row("hot (cache hit)", hot_s, speedup)
        emit("bench_server_cache", table)

    assert speedup >= MIN_SPEEDUP, (
        f"hot request only {speedup:.1f}x faster than cold "
        f"(need >= {MIN_SPEEDUP}x — is the cache recomputing?)"
    )


def _post(port, path, document):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.headers.get("X-Repro-Cache"), response.read()


def test_server_subprocess_smoke(dataset):
    env = dict(os.environ, PYTHONPATH=SRC_DIR, PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"listening on http://[\w.]+:(\d+)", line)
        assert match, f"no listening banner, got: {line!r}"
        port = int(match.group(1))

        params = {"dataset": dataset, "alpha": 0.3, "variant": "GDB^A",
                  "seed": 0}
        cache1, body1 = _post(port, "/sparsify", params)
        cache2, body2 = _post(port, "/sparsify", params)
        assert (cache1, cache2) == ("miss", "hit")
        assert body1 == body2, "cache hit must be bit-identical"

        _, body = _post(port, "/estimate", {
            "dataset": dataset, "query": "reliability", "samples": 50,
            "pairs": 10, "seed": 4,
        })
        assert 0.0 <= json.loads(body)["estimate"] <= 1.0

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=30
        ) as response:
            metrics = json.loads(response.read())
        assert metrics["total_requests"] >= 3
        assert metrics["cache"]["hits"] >= 1
        assert metrics["total_worlds"] >= 50
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
