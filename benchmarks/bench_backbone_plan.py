"""Smoke benchmark: the backbone planning layer.

A fig05-style ``(alpha, h)`` ladder on a ~10k-edge Forest-Fire sample of
a Flickr-style topology (the paper's "Flickr reduced" construction).
Backbone construction for the whole ladder, per-call reference vs plan:

- **reference** — one :func:`bgi_backbone_legacy` per alpha (what the
  pre-plan grid driver paid: a fresh scalar Kruskal + spanning peels +
  Monte-Carlo top-up per alpha; ``h`` cells already shared backbones).
- **plan** — one :class:`BackbonePlan` for the graph: a single stable
  argsort + vectorised nested Kruskal peels, then each alpha is a
  peel-prefix slice plus its seeded top-up.

Equality always gates: every ladder cell's plan backbone must be
*bit-identical* to the independent per-call build under the same seed.
The speedup gate (``MIN_SPEEDUP``, default 3x) is timing-based and
therefore core-count-aware — it skips itself on single-core machines;
CI relaxes it via ``REPRO_BENCH_BACKBONE_MIN_SPEEDUP`` for noisy shared
runners.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.backbone import BackbonePlan, bgi_backbone_legacy
from repro.datasets import flickr_like, forest_fire_sample
from repro.experiments.common import ResultTable

#: Acceptance floor for plan-vs-reference ladder construction (measured
#: ~8-30x single-core; CI overrides for noisy shared runners).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_BACKBONE_MIN_SPEEDUP", "3.0"))

#: The paper's upper alpha rungs; 8% is below the (|V|-1)/|E| spanning
#: floor on this sample (footnote 7), so the ladder starts at 16%.
ALPHAS = (0.16, 0.32, 0.48, 0.64)
H_VALUES = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0)  # fig05's h ladder
SEED = 17


@pytest.fixture(scope="module")
def bench_graph():
    """~10k-edge Forest-Fire sample (the paper's reduction protocol)."""
    base = flickr_like(n=2500, avg_degree=16, seed=17)
    graph = forest_fire_sample(base, 1600, rng=17)
    assert 9_000 <= graph.number_of_edges() <= 13_000
    return graph


def test_bench_backbone_plan_ladder(bench_graph, emit):
    # Reference: an independent seeded build per alpha (backbones are
    # shared across the h row, exactly like the historical grid driver).
    reference = {}
    start = time.perf_counter()
    for alpha in ALPHAS:
        reference[alpha] = bgi_backbone_legacy(bench_graph, alpha, rng=SEED)
    reference_seconds = time.perf_counter() - start

    # Plan: one Kruskal pass for the whole ladder, then prefix slices
    # plus seeded top-ups.
    start = time.perf_counter()
    plan = BackbonePlan(bench_graph)
    planned = {alpha: plan.backbone(alpha, rng=SEED) for alpha in ALPHAS}
    plan_seconds = time.perf_counter() - start

    # Equality always gates: bit-identical backbones for every cell of
    # the (alpha, h) ladder (h does not enter backbone construction).
    for alpha in ALPHAS:
        assert np.array_equal(planned[alpha], reference[alpha]), (
            f"plan backbone diverged from reference at alpha={alpha}"
        )
    # Nesting: the forest prefixes form a chain across the ladder.
    prefixes = [plan.forest_prefix(alpha) for alpha in sorted(ALPHAS)]
    for small, big in zip(prefixes, prefixes[1:]):
        assert np.array_equal(big[: len(small)], small)

    speedup = reference_seconds / plan_seconds
    table = ResultTable(
        title=(
            f"Backbone planning — fig05 ladder, {len(ALPHAS)} alphas x "
            f"{len(H_VALUES)} h values, {bench_graph.number_of_edges()} edges "
            f"({plan.forests_computed} forest peels computed)"
        ),
        headers=["builder", "seconds", "speedup", "backbone edges"],
        notes=(
            "all ladder cells bit-identical (gated); forest prefixes "
            "nested across alphas (gated)"
        ),
    )
    total_edges = sum(len(ids) for ids in reference.values())
    table.add_row("per-call reference", reference_seconds, 1.0, total_edges)
    table.add_row("backbone plan", plan_seconds, speedup, total_edges)
    emit("bench_backbone_plan", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"plan ladder only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )
