"""Smoke benchmark: the array-native sparsifier engine.

GDB and EMD on a ~10k-edge Forest-Fire sample of a Flickr-style
topology (the paper's "Flickr reduced" construction), loop engine vs
vector engine:

- **GDB sweeps** (the hot path of every fig04-08 grid point): a fixed
  number of ``k = 1`` coordinate-descent sweeps, color-blocked arrays
  against the scalar reference loop.  The speedup gate (``MIN_SPEEDUP``,
  default 3x) is timing-based and therefore core-count-aware — it skips
  itself on single-core machines; equality always gates via a separate
  run to the exact descent fixed point (``h = 1``), where the two
  engines' converged objectives must agree within 1e-6.
- **EMD**: the full Algorithm 3 with the vectorised E-phase candidate
  scan + fused M-phase against the scalar reference.  Here the engines
  are *bit-identical by construction*, so the equality gate is exact
  (``tol=0``) and always runs; the speedup floor is softer
  (``MIN_EMD_SPEEDUP``, default 1.2 — the E-phase is only part of EMD's
  cost).

Results land under ``benchmarks/results/`` like the other benches.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import EMDConfig, GDBConfig, SparsificationState, emd, gdb_refine
from repro.core.backbone import bgi_backbone
from repro.datasets import flickr_like, forest_fire_sample
from repro.experiments.common import ResultTable

#: Acceptance floor for the color-blocked GDB sweep vs the scalar loop
#: (measured ~8x single-core; CI overrides via
#: REPRO_BENCH_SPARSIFIER_MIN_SPEEDUP for noisy shared runners).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SPARSIFIER_MIN_SPEEDUP", "3.0"))

#: Acceptance floor for full EMD (measured ~2-2.8x single-core).
MIN_EMD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SPARSIFIER_MIN_EMD_SPEEDUP", "1.2")
)

ALPHA = 0.3
N_SWEEPS = 10


@pytest.fixture(scope="module")
def bench_graph():
    """~10k-edge Forest-Fire sample (the paper's reduction protocol)."""
    base = flickr_like(n=2500, avg_degree=16, seed=17)
    graph = forest_fire_sample(base, 1600, rng=17)
    assert 9_000 <= graph.number_of_edges() <= 13_000
    return graph


@pytest.fixture(scope="module")
def backbone(bench_graph):
    return bgi_backbone(bench_graph, ALPHA, rng=17)


def seeded_state(graph, backbone_ids):
    state = SparsificationState(graph)
    for eid in backbone_ids:
        state.select_edge(eid)
    return state


def fixed_point_objective(graph, backbone_ids, engine):
    """Converged D1 at ``h = 1``: chunked sweeps to the exact fixed point."""
    state = seeded_state(graph, backbone_ids)
    chunk = GDBConfig(h=1.0, tau=0.0, max_sweeps=200)
    previous = None
    for _ in range(10):
        gdb_refine(state, chunk, engine=engine)
        current = state.d1()
        if current == previous:
            break
        previous = current
    return current


def test_bench_gdb_sweep_engine(bench_graph, backbone, emit):
    timings = {}
    sweep_objectives = {}
    for engine in ("loop", "vector"):
        state = seeded_state(bench_graph, backbone)
        config = GDBConfig(h=0.05, tau=0.0, max_sweeps=N_SWEEPS)
        start = time.perf_counter()
        gdb_refine(state, config, engine=engine)
        timings[engine] = time.perf_counter() - start
        sweep_objectives[engine] = state.d1()
        state.verify()

    # Equality always gates: both engines descend to the same fixed
    # point of the h = 1 dynamics (within the loop-vs-vector contract).
    converged = {
        engine: fixed_point_objective(bench_graph, backbone, engine)
        for engine in ("loop", "vector")
    }
    gap = abs(converged["loop"] - converged["vector"])
    assert gap <= 1e-6 * max(1.0, abs(converged["loop"])), (
        f"engines converged {gap:.3e} apart"
    )

    speedup = timings["loop"] / timings["vector"]
    table = ResultTable(
        title=(
            f"GDB sweep engines — {N_SWEEPS} sweeps, "
            f"{len(backbone)} backbone edges of {bench_graph.number_of_edges()} "
            f"(alpha={ALPHA:.0%}, h=0.05, k=1)"
        ),
        headers=["engine", "seconds", "speedup", "D1 after sweeps"],
        notes=(
            f"converged objectives (h=1 fixed point) agree to {gap:.2e}; "
            f"gated <= 1e-6"
        ),
    )
    table.add_row("loop", timings["loop"], 1.0, sweep_objectives["loop"])
    table.add_row("vector", timings["vector"], speedup, sweep_objectives["vector"])
    emit("bench_sparsifier_gdb", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"vector GDB sweep only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_bench_emd_engine(bench_graph, backbone, emit):
    config = EMDConfig()
    results = {}
    timings = {}
    for engine in ("loop", "vector"):
        start = time.perf_counter()
        results[engine] = emd(
            bench_graph, backbone_ids=list(backbone), config=config,
            engine=engine,
        )
        timings[engine] = time.perf_counter() - start

    # Bit-identity always gates: same edge set, exactly equal
    # probabilities.
    assert results["loop"].isomorphic_probabilities(results["vector"], tol=0.0)

    speedup = timings["loop"] / timings["vector"]
    table = ResultTable(
        title=(
            f"EMD engines — full Algorithm 3, {len(backbone)} backbone edges "
            f"of {bench_graph.number_of_edges()} (alpha={ALPHA:.0%})"
        ),
        headers=["engine", "seconds", "speedup"],
        notes="outputs bit-identical (gated, tol=0)",
    )
    table.add_row("loop", timings["loop"], 1.0)
    table.add_row("vector", timings["vector"], speedup)
    emit("bench_sparsifier_emd", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_EMD_SPEEDUP, (
        f"vector EMD only {speedup:.2f}x faster (need >= {MIN_EMD_SPEEDUP}x)"
    )
