"""Smoke benchmark: the array-native sparsifier engine.

GDB and EMD on a ~10k-edge Forest-Fire sample of a Flickr-style
topology (the paper's "Flickr reduced" construction), loop engine vs
vector engine:

- **GDB sweeps** (the hot path of every fig04-08 grid point): a fixed
  number of ``k = 1`` coordinate-descent sweeps, color-blocked arrays
  against the scalar reference loop.  The speedup gate (``MIN_SPEEDUP``,
  default 3x) is timing-based and therefore core-count-aware — it skips
  itself on single-core machines; equality always gates via a separate
  run to the exact descent fixed point (``h = 1``), where the two
  engines' converged objectives must agree within 1e-6.
- **EMD**: the full Algorithm 3 with the vectorised E-phase candidate
  scan + fused M-phase against the scalar reference.  Here the engines
  are *bit-identical by construction*, so the equality gate is exact
  (``tol=0``) and always runs; the speedup floor is softer
  (``MIN_EMD_SPEEDUP``, default 1.2 — the E-phase is only part of EMD's
  cost).
- **EMD E-phase, lazy vs eager heap**: the isolated outer-loop E-phase
  (heap construction + one full swap pass over the backbone) with the
  eager per-swap ``IndexedMaxHeap`` discipline against the deferred
  ``LazyMaxHeap`` one.  The modes are only tie-equivalent, so the gate
  is converged-``D_1`` agreement on full EMD runs (<= 1e-6 of the seed
  backbone's initial discrepancy, the objective's natural scale); the
  timing floor is ``MIN_LAZY_SPEEDUP`` (default 1.5, measured ~2.1x
  single-core).

Results land under ``benchmarks/results/`` like the other benches.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import EMDConfig, GDBConfig, SparsificationState, emd, gdb_refine
from repro.core.backbone import bgi_backbone
from repro.core.discrepancy import delta_1
from repro.core.emd_sparsifier import _e_phase_lazy, _e_phase_vector
from repro.datasets import flickr_like, forest_fire_sample
from repro.experiments.common import ResultTable
from repro.utils.heap import IndexedMaxHeap, LazyMaxHeap

#: Acceptance floor for the color-blocked GDB sweep vs the scalar loop
#: (measured ~8x single-core; CI overrides via
#: REPRO_BENCH_SPARSIFIER_MIN_SPEEDUP for noisy shared runners).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SPARSIFIER_MIN_SPEEDUP", "3.0"))

#: Acceptance floor for full EMD (measured ~2-2.8x single-core).
MIN_EMD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SPARSIFIER_MIN_EMD_SPEEDUP", "1.2")
)

#: Acceptance floor for the lazy vs eager E-phase (measured ~2.1x).
MIN_LAZY_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SPARSIFIER_MIN_LAZY_SPEEDUP", "1.5")
)

ALPHA = 0.3
N_SWEEPS = 10


@pytest.fixture(scope="module")
def bench_graph():
    """~10k-edge Forest-Fire sample (the paper's reduction protocol)."""
    base = flickr_like(n=2500, avg_degree=16, seed=17)
    graph = forest_fire_sample(base, 1600, rng=17)
    assert 9_000 <= graph.number_of_edges() <= 13_000
    return graph


@pytest.fixture(scope="module")
def backbone(bench_graph):
    return bgi_backbone(bench_graph, ALPHA, rng=17)


def seeded_state(graph, backbone_ids):
    state = SparsificationState(graph)
    for eid in backbone_ids:
        state.select_edge(eid)
    return state


def fixed_point_objective(graph, backbone_ids, engine):
    """Converged D1 at ``h = 1``: chunked sweeps to the exact fixed point."""
    state = seeded_state(graph, backbone_ids)
    chunk = GDBConfig(h=1.0, tau=0.0, max_sweeps=200)
    previous = None
    for _ in range(10):
        gdb_refine(state, chunk, engine=engine)
        current = state.d1()
        if current == previous:
            break
        previous = current
    return current


def test_bench_gdb_sweep_engine(bench_graph, backbone, emit):
    timings = {}
    sweep_objectives = {}
    for engine in ("loop", "vector"):
        state = seeded_state(bench_graph, backbone)
        config = GDBConfig(h=0.05, tau=0.0, max_sweeps=N_SWEEPS)
        start = time.perf_counter()
        gdb_refine(state, config, engine=engine)
        timings[engine] = time.perf_counter() - start
        sweep_objectives[engine] = state.d1()
        state.verify()

    # Equality always gates: both engines descend to the same fixed
    # point of the h = 1 dynamics (within the loop-vs-vector contract).
    converged = {
        engine: fixed_point_objective(bench_graph, backbone, engine)
        for engine in ("loop", "vector")
    }
    gap = abs(converged["loop"] - converged["vector"])
    assert gap <= 1e-6 * max(1.0, abs(converged["loop"])), (
        f"engines converged {gap:.3e} apart"
    )

    speedup = timings["loop"] / timings["vector"]
    table = ResultTable(
        title=(
            f"GDB sweep engines — {N_SWEEPS} sweeps, "
            f"{len(backbone)} backbone edges of {bench_graph.number_of_edges()} "
            f"(alpha={ALPHA:.0%}, h=0.05, k=1)"
        ),
        headers=["engine", "seconds", "speedup", "D1 after sweeps"],
        notes=(
            f"converged objectives (h=1 fixed point) agree to {gap:.2e}; "
            f"gated <= 1e-6"
        ),
    )
    table.add_row("loop", timings["loop"], 1.0, sweep_objectives["loop"])
    table.add_row("vector", timings["vector"], speedup, sweep_objectives["vector"])
    emit("bench_sparsifier_gdb", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"vector GDB sweep only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_bench_emd_engine(bench_graph, backbone, emit):
    config = EMDConfig()
    results = {}
    timings = {}
    for engine in ("loop", "vector"):
        start = time.perf_counter()
        results[engine] = emd(
            bench_graph, backbone_ids=list(backbone), config=config,
            engine=engine,
        )
        timings[engine] = time.perf_counter() - start

    # Bit-identity always gates: same edge set, exactly equal
    # probabilities.
    assert results["loop"].isomorphic_probabilities(results["vector"], tol=0.0)

    speedup = timings["loop"] / timings["vector"]
    table = ResultTable(
        title=(
            f"EMD engines — full Algorithm 3, {len(backbone)} backbone edges "
            f"of {bench_graph.number_of_edges()} (alpha={ALPHA:.0%})"
        ),
        headers=["engine", "seconds", "speedup"],
        notes="outputs bit-identical (gated, tol=0)",
    )
    table.add_row("loop", timings["loop"], 1.0)
    table.add_row("vector", timings["vector"], speedup)
    emit("bench_sparsifier_emd", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_EMD_SPEEDUP, (
        f"vector EMD only {speedup:.2f}x faster (need >= {MIN_EMD_SPEEDUP}x)"
    )


def test_bench_emd_lazy_e_phase(bench_graph, backbone, emit):
    """Lazy deferred-heap E-phase vs the eager indexed-heap reference.

    Times the isolated outer-loop E-phase — heap construction plus one
    full swap pass — because the full ``emd()`` wall time is M-phase
    dominated.  Equality gates on the converged objective of *complete*
    EMD runs: the modes make tie-different swap choices, so the contract
    is converged-``D_1`` agreement, not bit-identity.
    """
    config = EMDConfig()

    def timed_e_phase(mode):
        state = seeded_state(bench_graph, backbone)
        start = time.perf_counter()
        if mode == "lazy":
            heap = LazyMaxHeap(state.delta)
            swaps = _e_phase_lazy(state, heap, config)
        else:
            heap = IndexedMaxHeap(
                {v: abs(float(state.delta[v])) for v in range(state.n)}
            )
            swaps = _e_phase_vector(state, heap, config)
        seconds = time.perf_counter() - start
        state.verify()
        return seconds, swaps

    timings = {}
    swap_counts = {}
    for mode in ("eager", "lazy"):
        timings[mode], swap_counts[mode] = min(
            timed_e_phase(mode) for _ in range(3)
        )

    # Converged-objective gate on full EMD runs (always on).  The gap
    # is measured against the seed backbone's initial discrepancy: both
    # modes recover the same fraction of it to within 1e-6 (the
    # converged objectives themselves sit ~6 orders of magnitude below
    # the initial mass, so an absolute gate would compare tie-different
    # local optima at noise level).
    initial_d1 = float(
        np.abs(seeded_state(bench_graph, backbone).delta).sum()
    )
    results = {
        mode: emd(
            bench_graph, backbone_ids=list(backbone), config=config,
            emd_mode=mode,
        )
        for mode in ("eager", "lazy")
    }
    d1 = {
        mode: delta_1(bench_graph, graph) for mode, graph in results.items()
    }
    gap = abs(d1["lazy"] - d1["eager"])
    assert gap <= 1e-6 * max(1.0, initial_d1), (
        f"lazy EMD converged D1 {gap:.3e} away from eager "
        f"(initial discrepancy {initial_d1:.3e})"
    )
    assert (
        results["lazy"].number_of_edges() == results["eager"].number_of_edges()
    )

    speedup = timings["eager"] / timings["lazy"]
    table = ResultTable(
        title=(
            f"EMD E-phase heap modes — heap build + one swap pass, "
            f"{len(backbone)} backbone edges of "
            f"{bench_graph.number_of_edges()} (alpha={ALPHA:.0%})"
        ),
        headers=["mode", "seconds", "speedup", "swaps"],
        notes=(
            f"full-run converged D1 agree to {gap:.2e} "
            f"(gated <= 1e-6 x initial discrepancy {initial_d1:.3g}); "
            f"min of 3 repetitions"
        ),
    )
    table.add_row("eager", timings["eager"], 1.0, swap_counts["eager"])
    table.add_row("lazy", timings["lazy"], speedup, swap_counts["lazy"])
    emit("bench_sparsifier_emd_lazy", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — equality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_LAZY_SPEEDUP, (
        f"lazy E-phase only {speedup:.2f}x faster (need >= {MIN_LAZY_SPEEDUP}x)"
    )
