"""Fig. 1 — exact connectivity of the introductory example."""

import pytest

from repro.experiments import run_fig01


def test_fig01_intro(benchmark, emit):
    table = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    emit("fig01_intro", table)
    # Paper values: 0.219 (original) vs 0.216 (sparsified).
    assert table.cell("figure1a", "Pr[connected]") == pytest.approx(0.219, abs=5e-4)
    assert table.cell("figure1b", "Pr[connected]") == pytest.approx(0.216, abs=1e-9)
    # Sparsification halves the edges and cuts entropy roughly in half.
    assert table.cell("figure1b", "entropy_bits") < 0.6 * table.cell(
        "figure1a", "entropy_bits"
    )
