"""Table 2 — degree-discrepancy MAE of every proposed variant."""

from repro.experiments import run_table2


def test_table2_variant_sweep(benchmark, bench_scale, emit):
    table = benchmark.pedantic(
        run_table2, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("table2_variants", table)

    last = table.headers[-1]
    mid = table.headers[2]  # 16% column

    # Paper shape 1: GDB^A_n is by far the worst at alpha above E[p].
    others = [v for v in table.column("variant") if v != "GDB^A_n"]
    assert all(
        table.cell("GDB^A_n", last) > table.cell(v, last) for v in others
    )
    # Paper shape 2: BGI (-t) backbones help at moderate alpha.
    assert table.cell("GDB^A-t", mid) <= table.cell("GDB^A", mid)
    # Paper shape 3: the best overall variant family is EMD/-t or LP-t;
    # every proposed method's error collapses by 64%.
    assert all(table.cell(v, last) < 0.05 for v in others)
