"""Fig. 8 — relative entropy of sparsified graphs."""

from repro.experiments import run_fig08
from repro.experiments.common import REPRESENTATIVE_EMD, REPRESENTATIVE_GDB


def test_fig08_relative_entropy(benchmark, bench_scale, emit):
    results = benchmark.pedantic(
        run_fig08, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig08_entropy", *results.values())

    for dataset in ("flickr", "twitter"):
        table = results[dataset]
        first, last = table.headers[1], table.headers[-1]
        for method in table.column("method"):
            # Relative entropy < 1 everywhere and increasing with alpha.
            assert 0.0 <= table.cell(method, last) < 1.0
            assert table.cell(method, first) <= table.cell(method, last) + 1e-9
        # Proposed methods reduce entropy far below the benchmarks at
        # small alpha (paper: at least an order of magnitude).
        proposed = min(
            results[dataset].cell(REPRESENTATIVE_GDB, first),
            results[dataset].cell(REPRESENTATIVE_EMD, first),
        )
        assert proposed < table.cell("NI", first)
        assert proposed < table.cell("SP", first)
