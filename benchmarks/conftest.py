"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure at the ``tiny``
experiment scale (see ``repro.experiments.common``), times it via
pytest-benchmark, prints the resulting rows, and archives them under
``benchmarks/results/`` so the series survive pytest's stdout capture.
Scale up by editing ``BENCH_SCALE`` or by running the experiment modules
directly (``python -m repro.experiments.fig10``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import TINY
from repro.experiments.common import ExperimentScale, ResultTable

#: Scale used by every benchmark; override with REPRO_BENCH_SCALE=small.
BENCH_SCALE: ExperimentScale = TINY

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    from repro.experiments import SCALES

    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    return SCALES.get(name, BENCH_SCALE)


@pytest.fixture
def emit():
    """Print tables and archive them to benchmarks/results/<name>.txt."""

    def _emit(name: str, *tables: ResultTable) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(t.format() for t in tables)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _emit


@pytest.fixture
def emit_json():
    """Archive a machine-readable payload to benchmarks/results/BENCH_<name>.json.

    The JSON twin of :func:`emit`: CI jobs and downstream tooling parse
    these instead of scraping the formatted tables.  Payloads must be
    plain JSON-serialisable dicts; the file is rewritten atomically-ish
    (single write) and pretty-printed for diffability.
    """
    import json

    def _emit_json(name: str, payload: dict) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"BENCH_{name}.json"
        out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n[bench] wrote {out}")
        return out

    return _emit_json
