"""Smoke benchmark: out-of-core binary datasets + sharded grid execution.

Generates a forest-fire graph as dense edge arrays, writes it both as a
binary dataset and as a text edge list, then runs ``gdb_grid`` end to
end in *subprocesses* (one per phase) so ``ru_maxrss`` measures each
execution model in isolation:

- ``import``       — interpreter + numpy/scipy import floor (baseline),
- ``binary_grid``  — mmap-backed binary load + sharded grid (workers 1
  and ``WORKERS``),
- ``text_grid``    — materialised text parse into the dict graph + the
  serial grid driver (skipped above ``TEXT_CAP`` edges).

Gates:

- **Determinism (always):** the objective rows for ``workers=1`` and
  ``workers=WORKERS`` are bit-identical (compared as ``repr`` strings).
- **O(header) load (when the text baseline runs):** the binary dataset
  must open at least ``MIN_LOAD_SPEEDUP``x faster than the text parse.
- **Bounded RSS (when the text baseline runs):** the binary phase's RSS
  increment over the import floor must stay below ``MAX_RSS_RATIO`` of
  the text phase's increment — the out-of-core claim.
- **Worker speedup (core-count-aware):** ``workers=WORKERS`` must beat
  ``workers=1`` by ``MIN_SPEEDUP`` — skipped when the machine has fewer
  cores than workers (the determinism gate above still ran).

Scale with ``REPRO_BENCH_OUTOFCORE_EDGES`` (default 200k; the 10M-edge
acceptance run uses ``REPRO_BENCH_OUTOFCORE_EDGES=10000000``, which
skips the text baseline via ``TEXT_CAP``).  Results are archived as a
table and as machine-readable ``results/BENCH_outofcore.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.common import ResultTable

#: Target edge count; vertices are derived (m ~= 10 n at avg_degree 20).
EDGES = int(os.environ.get("REPRO_BENCH_OUTOFCORE_EDGES", "200000"))

#: Worker count for the sharded phase (CI smoke uses 2).
WORKERS = int(os.environ.get("REPRO_BENCH_OUTOFCORE_WORKERS", "2"))

#: Above this edge count the materialised-text baseline is skipped (it
#: is the thing the binary path exists to avoid).
TEXT_CAP = int(os.environ.get("REPRO_BENCH_OUTOFCORE_TEXT_CAP", "2000000"))

#: Binary-over-text RSS increment ceiling: the mmap-backed run must use
#: less than this fraction of the dict-graph run's memory increment.
MAX_RSS_RATIO = float(
    os.environ.get("REPRO_BENCH_OUTOFCORE_MAX_RSS_RATIO", "0.8")
)

#: Floor for binary-open vs text-parse time (O(header) vs O(m); the
#: measured gap at 200k edges is >100x, so 10x has a wide margin).
MIN_LOAD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_OUTOFCORE_MIN_LOAD_SPEEDUP", "10.0")
)

#: Floor for the sharded-vs-serial grid wall time.  Shared runners are
#: noisy and shards are coarse, so the default only guards against the
#: pool being a net loss; determinism is the real gate.
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_OUTOFCORE_MIN_SPEEDUP", "1.0")
)

ALPHAS = [0.4, 0.7]
H_VALUES = [0.25, 1.0]
SEED = 5

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Each phase runs in a child interpreter and prints one JSON line; the
#: child measures its own ru_maxrss so phases never share a peak.
_CHILD = r"""
import json, resource, sys, time

phase, args = sys.argv[1], json.loads(sys.argv[2])
sys.path.insert(0, args["srcpath"])
out = {"phase": phase}
if phase == "import":
    import repro  # noqa: F401  (pull in numpy/scipy for the RSS floor)
    import repro.core, repro.datasets  # noqa: F401
elif phase == "binary_grid":
    from repro.core import sharded_gdb_grid
    from repro.core.grid import objective_rows
    from repro.datasets import read_binary

    t0 = time.perf_counter()
    graph = read_binary(args["binary"], mmap=True).graph()
    out["load_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    cells = sharded_gdb_grid(
        graph, args["alphas"], args["h_values"],
        workers=args["workers"], rng=args["seed"], dataset=args["binary"],
    )
    out["grid_s"] = time.perf_counter() - t0
    out["rows"] = [
        [repr(r["alpha"]), repr(r["h"]), repr(r["objective"])]
        for r in objective_rows(cells)
    ]
    out["n"], out["m"] = graph.number_of_vertices(), graph.number_of_edges()
elif phase == "text_grid":
    from repro.core.grid import gdb_grid, objective_rows
    from repro.datasets import read_edge_list

    t0 = time.perf_counter()
    graph = read_edge_list(args["text"])
    out["load_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    cells = gdb_grid(
        graph, args["alphas"], args["h_values"],
        build_graphs=False, rng=args["seed"],
    )
    out["grid_s"] = time.perf_counter() - t0
    out["rows"] = [
        [repr(r["alpha"]), repr(r["h"]), repr(r["objective"])]
        for r in objective_rows(cells)
    ]
else:
    raise SystemExit(f"unknown phase {phase!r}")
out["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps(out))
"""


def _run_phase(phase: str, **args) -> dict:
    payload = json.dumps({"srcpath": _SRC, **args})
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, phase, payload],
        capture_output=True, text=True, timeout=3600,
    )
    assert proc.returncode == 0, (
        f"phase {phase!r} failed:\n{proc.stderr[-4000:]}"
    )
    return json.loads(proc.stdout.splitlines()[-1])


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Binary + (optional) text twin of one forest-fire graph."""
    from repro.datasets import forest_fire_like_arrays, write_binary_arrays

    tmp = tmp_path_factory.mktemp("outofcore")
    n_vertices = max(EDGES // 10, 50)
    n, src, dst, prob = forest_fire_like_arrays(
        n_vertices, avg_degree=20.0, rng=11
    )
    binary = tmp / "forest_fire.bin"
    write_binary_arrays(binary, n, src, dst, prob, validate=False)
    text = None
    if len(prob) <= TEXT_CAP:
        text = tmp / "forest_fire.txt"
        with open(text, "w", encoding="utf-8") as fh:
            for u, v, p in zip(src.tolist(), dst.tolist(), prob.tolist()):
                fh.write(f"{u} {v} {p!r}\n")
    return {"binary": str(binary), "text": str(text) if text else None,
            "m": int(len(prob)), "n": int(n)}


def test_bench_outofcore(corpus, emit, emit_json):
    grid_args = dict(alphas=ALPHAS, h_values=H_VALUES, seed=SEED)

    baseline = _run_phase("import")
    serial = _run_phase(
        "binary_grid", binary=corpus["binary"], workers=1, **grid_args
    )
    sharded = _run_phase(
        "binary_grid", binary=corpus["binary"], workers=WORKERS, **grid_args
    )
    text = None
    if corpus["text"] is not None:
        text = _run_phase("text_grid", text=corpus["text"], **grid_args)

    # -- determinism: sharding must not change a single bit ------------
    assert serial["rows"] == sharded["rows"], (
        f"workers={WORKERS} changed the grid objectives"
    )

    floor_kb = baseline["ru_maxrss_kb"]
    binary_inc = max(serial["ru_maxrss_kb"], sharded["ru_maxrss_kb"]) - floor_kb
    payload = {
        "edges": corpus["m"],
        "vertices": corpus["n"],
        "workers": WORKERS,
        "grid": {"alphas": ALPHAS, "h_values": H_VALUES, "seed": SEED},
        "import_rss_kb": floor_kb,
        "binary": {
            "load_s": serial["load_s"],
            "grid_s_workers1": serial["grid_s"],
            f"grid_s_workers{WORKERS}": sharded["grid_s"],
            "shard_speedup": serial["grid_s"] / max(sharded["grid_s"], 1e-9),
            "rss_increment_kb": binary_inc,
        },
        "rows": serial["rows"],
        "rows_identical_across_workers": True,
    }

    table = ResultTable(
        title=(
            f"Out-of-core grid — {corpus['m']} edges, "
            f"grid {len(ALPHAS)}x{len(H_VALUES)}, workers {{1, {WORKERS}}}"
        ),
        headers=["phase", "load s", "grid s", "rss inc KB"],
    )
    table.add_row("binary workers=1", serial["load_s"], serial["grid_s"],
                  serial["ru_maxrss_kb"] - floor_kb)
    table.add_row(f"binary workers={WORKERS}", sharded["load_s"],
                  sharded["grid_s"], sharded["ru_maxrss_kb"] - floor_kb)

    if text is not None:
        text_inc = text["ru_maxrss_kb"] - floor_kb
        load_speedup = text["load_s"] / max(serial["load_s"], 1e-9)
        payload["text"] = {
            "load_s": text["load_s"],
            "grid_s": text["grid_s"],
            "rss_increment_kb": text_inc,
            "load_speedup": load_speedup,
            "rss_ratio": binary_inc / max(text_inc, 1),
        }
        table.add_row("text serial", text["load_s"], text["grid_s"], text_inc)

    emit("bench_outofcore", table)
    emit_json("outofcore", payload)

    if text is not None:
        assert load_speedup >= MIN_LOAD_SPEEDUP, (
            f"binary open only {load_speedup:.1f}x faster than text parse "
            f"(need >= {MIN_LOAD_SPEEDUP}x — O(header) load regressed?)"
        )
        assert binary_inc <= MAX_RSS_RATIO * text_inc, (
            f"binary-path RSS increment {binary_inc} KB not below "
            f"{MAX_RSS_RATIO:.0%} of the text baseline's {text_inc} KB"
        )

    cores = os.cpu_count() or 1
    speedup = serial["grid_s"] / max(sharded["grid_s"], 1e-9)
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} cores for {WORKERS} workers — determinism and "
            f"RSS gated, speedup needs the cores (measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded grid only {speedup:.2f}x vs serial "
        f"(need >= {MIN_SPEEDUP}x at {WORKERS} workers)"
    )
