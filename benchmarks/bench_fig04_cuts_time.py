"""Fig. 4 — cut-discrepancy MAE and LP/GDB/EMD running time."""

from repro.experiments import run_fig04a, run_fig04b


def test_fig04a_cut_discrepancy(benchmark, bench_scale, emit):
    table = benchmark.pedantic(
        run_fig04a, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig04a_cuts", table)
    last = table.headers[-1]
    # GDB^A_n ignores cut structure: worst at large alpha.
    others = [v for v in table.column("variant") if v != "GDB^A_n"]
    assert all(table.cell("GDB^A_n", last) > table.cell(v, last) for v in others)


def test_fig04b_execution_time(benchmark, bench_scale, emit):
    table = benchmark.pedantic(
        run_fig04b, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig04b_time", table)
    # GDB is the fastest of the three at the largest alpha (paper: LP is
    # orders slower at scale; at toy sizes we only assert GDB <= EMD).
    last = table.headers[-1]
    assert table.cell("GDB^A-t", last) <= table.cell("EMD^A-t", last)
