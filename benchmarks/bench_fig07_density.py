"""Fig. 7 — structural error growth with graph density."""

from repro.experiments import run_fig07
from repro.experiments.common import REPRESENTATIVE_EMD


def test_fig07_density_sweep(benchmark, bench_scale, emit):
    degree, cuts = benchmark.pedantic(
        run_fig07, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig07_density", degree, cuts)

    first, last = degree.headers[1], degree.headers[-1]
    # Error grows with density for the non-redistributing SP baseline
    # (the paper's linear-in-|E| analysis).
    assert degree.cell("SP", last) > degree.cell("SP", first)
    # EMD stays far below SP at the densest setting.
    assert degree.cell(REPRESENTATIVE_EMD, last) < degree.cell("SP", last)
    assert cuts.cell(REPRESENTATIVE_EMD, last) < cuts.cell("SP", last)
