"""Smoke benchmark: batched vs legacy Monte-Carlo estimator throughput.

Times a 500-world reliability estimate on a ~2k-edge synthetic graph
through both execution paths of :class:`MonteCarloEstimator`.  The
batched world-ensemble engine must (a) return the exact same outcome
matrix and (b) beat the per-world loop by at least ``MIN_SPEEDUP``.
Results are archived under ``benchmarks/results/`` like the figure
benchmarks.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.datasets import flickr_like
from repro.experiments.common import ResultTable
from repro.queries import PageRankQuery, ReliabilityQuery, sample_vertex_pairs
from repro.sampling import MonteCarloEstimator

#: Acceptance floor for the reliability workload (the headline claim).
#: Shared CI runners have noisy clocks — they override this via
#: REPRO_BENCH_MIN_SPEEDUP; the correctness assertion always holds.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))

N_WORLDS = 500
N_PAIRS = 20


@pytest.fixture(scope="module")
def graph():
    # ~2000 edges: n=200, avg_degree=20 -> 20/2 * (200 - 10) + 55 = 1955.
    g = flickr_like(n=200, avg_degree=20, seed=17)
    assert 1800 <= g.number_of_edges() <= 2200
    return g


def _run_both(graph, query, n_samples=N_WORLDS, legacy_samples=None):
    """(speedup, batched outcomes, legacy outcomes) for one query.

    ``legacy_samples`` lets slow queries time the legacy path on fewer
    worlds and extrapolate per-world cost; outcomes are then compared on
    that prefix (the RNG stream is shared, so prefixes coincide).
    """
    legacy_samples = legacy_samples or n_samples
    batched = MonteCarloEstimator(graph, n_samples=n_samples)
    start = time.perf_counter()
    batched_result = batched.run(query, rng=3)
    batched_seconds = time.perf_counter() - start

    legacy = MonteCarloEstimator(graph, n_samples=legacy_samples, batched=False)
    start = time.perf_counter()
    legacy_result = legacy.run(query, rng=3)
    legacy_seconds = (time.perf_counter() - start) * (n_samples / legacy_samples)

    assert np.array_equal(
        batched_result.outcomes[:legacy_samples],
        legacy_result.outcomes,
        equal_nan=True,
    )
    return legacy_seconds / batched_seconds, batched_seconds, legacy_seconds


def test_bench_batch_vs_legacy_reliability(graph, emit):
    pairs = sample_vertex_pairs(graph, N_PAIRS, rng=7)
    speedup, batched_s, legacy_s = _run_both(graph, ReliabilityQuery(pairs))

    table = ResultTable(
        title=f"Batched vs legacy estimator — RL, {N_WORLDS} worlds, "
        f"{graph.number_of_edges()} edges",
        headers=["path", "seconds", "speedup"],
    )
    table.add_row("legacy", legacy_s, 1.0)
    table.add_row("batched", batched_s, speedup)
    emit("bench_batch_estimator", table)

    assert speedup >= MIN_SPEEDUP, (
        f"batched reliability estimate only {speedup:.1f}x faster "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_bench_batch_vs_legacy_pagerank(graph, emit):
    query = PageRankQuery(graph.number_of_vertices())
    speedup, batched_s, legacy_s = _run_both(
        graph, query, n_samples=100, legacy_samples=100
    )
    table = ResultTable(
        title=f"Batched vs legacy estimator — PR, 100 worlds, "
        f"{graph.number_of_edges()} edges",
        headers=["path", "seconds", "speedup"],
    )
    table.add_row("legacy", legacy_s, 1.0)
    table.add_row("batched", batched_s, speedup)
    emit("bench_batch_estimator_pagerank", table)
    # PR's legacy inner loop is already vectorised; just require a win.
    assert speedup >= 1.0
