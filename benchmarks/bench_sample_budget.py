"""Extension: measured sample budget N' vs N (the paper's 6.3 payoff)."""

from repro.experiments.common import REPRESENTATIVE_EMD, REPRESENTATIVE_GDB
from repro.experiments.sample_budget import run_sample_budget


def test_sample_budget(benchmark, bench_scale, emit):
    table = benchmark.pedantic(
        run_sample_budget, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("sample_budget", table)
    # The proposed methods reach the target confidence width with at
    # most as many samples as the original graph.
    for method in (REPRESENTATIVE_GDB, REPRESENTATIVE_EMD):
        assert table.cell(method, "vs_original") <= 1.0
