"""Fig. 5 — the accuracy/entropy trade-off of the h parameter."""

from repro.experiments import run_fig05


def test_fig05_h_tradeoff(benchmark, bench_scale, emit):
    mae, entropy = benchmark.pedantic(
        run_fig05, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig05_h_sweep", mae, entropy)
    last = mae.headers[-1]
    # h = 1 minimises degree error; h = 0 minimises entropy (Fig. 5 a/b).
    assert mae.cell(1.0, last) <= mae.cell(0.0, last) + 1e-12
    assert entropy.cell(0.0, last) <= entropy.cell(1.0, last) + 1e-12
    # Entropy ratio is monotone-ish in h at the largest alpha: the
    # smallest positive h stays below the peak of the larger-h cells
    # (the h = 1 endpoint itself can dip at large alpha, where full
    # steps drive probabilities to the deterministic extremes).
    larger_h = [entropy.cell(h, last) for h in (0.05, 0.1, 0.5, 1.0)]
    assert entropy.cell(0.01, last) <= max(larger_h) + 1e-9
