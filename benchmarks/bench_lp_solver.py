"""Smoke benchmark: first-order pdp LP solver vs the HiGHS reference.

The Theorem-1 LP on a ~100k-edge Forest-Fire sample of a Flickr-style
topology (the paper's "Flickr reduced" construction at the scale where
the paper dismisses LP as impractical), with a BGI backbone of ~40k
edges:

- **quality gate (always on)**: the pdp objective must land within 1%
  of the HiGHS optimum (``MAX_GAP``; the solver's own duality-gap
  stop is 0.1%), and the returned point must be strictly feasible —
  ``A_b p' <= d`` and ``0 <= p' <= 1`` (Lemma 1).
- **timing gate**: pdp must beat HiGHS by ``MIN_SPEEDUP`` (default 3x;
  measured ~100-150x single-core — the floor is deliberately loose for
  noisy shared runners and is env-overridable like the other benches).
  Skipped on single-core machines; the quality gate still runs there.

Results land under ``benchmarks/results/`` like the other benches.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.backbone import bgi_backbone
from repro.core.lp import backbone_incidence, lp_assign_probabilities
from repro.datasets import flickr_like, forest_fire_sample
from repro.experiments.common import ResultTable

#: Relative objective shortfall allowed for pdp vs the HiGHS optimum.
MAX_GAP = float(os.environ.get("REPRO_BENCH_LP_MAX_GAP", "0.01"))

#: Acceptance floor for pdp vs HiGHS wall time (measured ~100-150x).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_LP_MIN_SPEEDUP", "3.0"))

ALPHA = 0.45


@pytest.fixture(scope="module")
def bench_graph():
    """~100k-edge Forest-Fire sample (the paper's reduction protocol)."""
    base = flickr_like(n=16_000, avg_degree=18, seed=17)
    graph = forest_fire_sample(base, 12_000, rng=17)
    assert 80_000 <= graph.number_of_edges() <= 130_000
    return graph


@pytest.fixture(scope="module")
def backbone(bench_graph):
    ids = bgi_backbone(bench_graph, ALPHA, rng=17)
    assert len(ids) >= 30_000
    return ids


def test_bench_pdp_vs_highs(bench_graph, backbone, emit):
    solutions = {}
    timings = {}
    for solver in ("highs", "pdp"):
        start = time.perf_counter()
        solutions[solver] = lp_assign_probabilities(
            bench_graph, backbone, solver=solver
        )
        timings[solver] = time.perf_counter() - start

    objectives = {k: float(v.sum()) for k, v in solutions.items()}

    # Quality gate (always on): within MAX_GAP of the exact optimum,
    # never above it, and strictly feasible.
    shortfall = (objectives["highs"] - objectives["pdp"]) / objectives["highs"]
    assert objectives["pdp"] <= objectives["highs"] + 1e-6
    assert shortfall <= MAX_GAP, (
        f"pdp objective {shortfall:.2%} below HiGHS (allowed {MAX_GAP:.0%})"
    )
    pdp = solutions["pdp"]
    assert np.all(pdp >= 0.0) and np.all(pdp <= 1.0)
    products = backbone_incidence(bench_graph, np.asarray(backbone)) @ pdp
    assert np.all(products <= bench_graph.expected_degree_array() + 1e-9)

    speedup = timings["highs"] / timings["pdp"]
    table = ResultTable(
        title=(
            f"Theorem-1 LP solvers — {len(backbone)} backbone edges of "
            f"{bench_graph.number_of_edges()} "
            f"(|V|={bench_graph.number_of_vertices()}, alpha={ALPHA:.0%})"
        ),
        headers=["solver", "seconds", "speedup", "objective"],
        notes=(
            f"pdp lands {shortfall:.3%} below the HiGHS optimum "
            f"(gated <= {MAX_GAP:.0%}); feasibility gated exactly"
        ),
    )
    table.add_row("highs", timings["highs"], 1.0, objectives["highs"])
    table.add_row("pdp", timings["pdp"], speedup, objectives["pdp"])
    emit("bench_lp_solver", table)

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"single-core machine — quality checked, speedup gate skipped "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"pdp only {speedup:.2f}x faster than HiGHS (need >= {MIN_SPEEDUP}x)"
    )
