"""Fig. 11 — query quality versus density (synthetic sweep)."""

import numpy as np

from repro.experiments import run_fig11
from repro.experiments.common import REPRESENTATIVE_EMD


def test_fig11_density_queries(benchmark, bench_scale, emit):
    tables = benchmark.pedantic(
        run_fig11, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig11_density_queries", *tables.values())

    sp = tables["SP"]
    first, last = sp.headers[1], sp.headers[-1]
    # Paper: SP error decreases with density (alternative short paths).
    for method in sp.column("method"):
        assert sp.cell(method, last) <= sp.cell(method, first) + 0.5

    pr = tables["PR"]
    # EMD stays competitive with the benchmarks on PR across densities.
    emd_mean = np.mean([pr.cell(REPRESENTATIVE_EMD, c) for c in pr.headers[1:]])
    ni_mean = np.mean([pr.cell("NI", c) for c in pr.headers[1:]])
    sp_mean = np.mean([pr.cell("SP", c) for c in pr.headers[1:]])
    assert emd_mean <= max(ni_mean, sp_mean)
