"""Fig. 10 — earth mover's distance of PR/SP/RL/CC query results."""

import numpy as np

from repro.experiments import run_fig10
from repro.experiments.common import REPRESENTATIVE_EMD, REPRESENTATIVE_GDB


def test_fig10_query_quality(benchmark, bench_scale, emit):
    results = benchmark.pedantic(
        run_fig10, args=(bench_scale,), rounds=1, iterations=1
    )
    for dataset, tables in results.items():
        emit(f"fig10_{dataset}", *tables.values())

    # Paper shape: averaged over alphas, the proposed methods beat the
    # benchmarks on (almost) every query; assert it for the aggregate of
    # each dataset to stay robust at toy scale.
    for dataset, tables in results.items():
        wins = 0
        comparisons = 0
        for query, table in tables.items():
            alpha_cols = table.headers[1:]
            proposed = np.mean([
                min(table.cell(REPRESENTATIVE_GDB, c), table.cell(REPRESENTATIVE_EMD, c))
                for c in alpha_cols
            ])
            benchmark_best = np.mean([
                min(table.cell("NI", c), table.cell("SP", c))
                for c in alpha_cols
            ])
            comparisons += 1
            if proposed <= benchmark_best * 1.05:
                wins += 1
        assert wins >= comparisons - 1, f"{dataset}: proposed methods lost too often"
