"""Smoke benchmark: parallel vs serial batched Monte-Carlo estimator.

Times the 500-world reliability workload (same graph and budget as
``bench_batch_estimator.py``) through :class:`MonteCarloEstimator` with
``workers=1`` and ``workers=WORKERS``.  The parallel path must (a)
return the exact same outcome matrix — the sequential-compatibility
contract — and (b) beat the serial path by at least ``MIN_SPEEDUP``
when the machine actually has the cores.  Results are archived under
``benchmarks/results/`` like the figure benchmarks.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.datasets import flickr_like
from repro.experiments.common import ResultTable
from repro.queries import PageRankQuery, ReliabilityQuery, sample_vertex_pairs
from repro.sampling import MonteCarloEstimator

#: Acceptance floor for the reliability workload.  Near-linear scaling
#: lands well above 2x at 4 workers; shared CI runners time noisily and
#: override via REPRO_BENCH_PARALLEL_MIN_SPEEDUP (the bit-equality
#: assertion always gates).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PARALLEL_MIN_SPEEDUP", "2.0"))

#: Worker count under test (CI smoke uses 2; the headline claim uses 4).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

N_WORLDS = 500
N_PAIRS = 50

#: Fixed chunk size giving WORKERS-way overlap with plenty of slack
#: (500 / 25 = 20 chunks); determinism never depends on this choice.
CHUNK = 25


@pytest.fixture(scope="module")
def graph():
    # ~10k edges: heavy enough per chunk that evaluation dominates the
    # per-chunk mask shipping and the (lazy, forked) pool startup.
    g = flickr_like(n=1000, avg_degree=20, seed=17)
    assert 9000 <= g.number_of_edges() <= 11000
    return g


def _timed_run(graph, query, workers, n_samples=N_WORLDS):
    estimator = MonteCarloEstimator(
        graph, n_samples=n_samples, batch_size=CHUNK, workers=workers
    )
    try:
        start = time.perf_counter()
        result = estimator.run(query, rng=3)
        seconds = time.perf_counter() - start
    finally:
        estimator.close()
    return result.outcomes, seconds


def _bench(graph, query, emit, name, n_samples=N_WORLDS):
    serial_outcomes, serial_s = _timed_run(graph, query, 1, n_samples)
    parallel_outcomes, parallel_s = _timed_run(graph, query, WORKERS, n_samples)
    # The determinism contract gates unconditionally: identical chunk
    # boundaries + in-order stitching => bit-identical outcome matrices.
    assert np.array_equal(serial_outcomes, parallel_outcomes, equal_nan=True), (
        "parallel execution changed the outcome matrix"
    )
    speedup = serial_s / parallel_s
    table = ResultTable(
        title=f"Parallel vs serial estimator — {name}, {n_samples} worlds, "
        f"{graph.number_of_edges()} edges, chunk {CHUNK}",
        headers=["workers", "seconds", "speedup"],
    )
    table.add_row("1", serial_s, 1.0)
    table.add_row(str(WORKERS), parallel_s, speedup)
    emit(f"bench_parallel_estimator_{name.lower()}", table)
    return speedup


def test_bench_parallel_reliability(graph, emit):
    pairs = sample_vertex_pairs(graph, N_PAIRS, rng=7)
    speedup = _bench(graph, ReliabilityQuery(pairs), emit, "RL")
    cores = os.cpu_count() or 1
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} cores for {WORKERS} workers — equality checked, "
            f"speedup gate needs the cores (measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel reliability estimate only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x at {WORKERS} workers)"
    )


def test_bench_parallel_pagerank(graph, emit):
    # PR chunks are heavier per world; the bit-equality inside _bench is
    # the gate here, the speedup is reported for the scaling table.
    query = PageRankQuery(graph.number_of_vertices())
    _bench(graph, query, emit, "PR", n_samples=200)
