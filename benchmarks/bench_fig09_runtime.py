"""Fig. 9 — sparsification wall-clock time."""

from repro.experiments import run_fig09
from repro.experiments.common import REPRESENTATIVE_GDB


def test_fig09_runtime(benchmark, bench_scale, emit):
    results = benchmark.pedantic(
        run_fig09, args=(bench_scale,), rounds=1, iterations=1
    )
    emit("fig09_runtime", *results.values())

    for table in results.values():
        last = table.headers[-1]
        # NI's iterated forest peeling is the slowest method (paper:
        # more than an order of magnitude slower than GDB).
        assert table.cell("NI", last) > table.cell(REPRESENTATIVE_GDB, last)
