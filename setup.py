"""Legacy setup shim: enables `python setup.py develop` on offline
machines without the `wheel` package (PEP 660 editable installs need it).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
